// Package resilience provides the load-management primitives behind
// bufferkitd's resilience tier: a bounded, deadline-aware admission queue
// with load shedding (Controller) and in-flight request coalescing with
// waiter-safe cancellation (Group, in singleflight.go).
//
// The admission model replaces a bare semaphore. A bare semaphore admits
// every request eventually: under sustained overload the wait queue grows
// without bound inside net/http, every queued request ties up a goroutine
// and a connection, and by the time a slot frees up the client's deadline
// has long expired — the server does the work and throws the answer away.
// The Controller instead:
//
//   - grants a slot immediately when one is free (the uncontended path is a
//     single non-blocking channel send);
//   - rejects a request up front when its remaining deadline cannot cover
//     the observed solve-time EWMA — the work would be wasted;
//   - bounds the number of waiters: when the queue is full, new arrivals
//     are shed immediately with a Retry-After derived from queue depth ×
//     EWMA, so clients back off instead of piling on;
//   - caps the time any request spends waiting (QueueTimeout), so a
//     admitted-but-stuck request becomes a fast failure rather than a
//     deadline burn.
//
// Shed decisions are reported as *ShedError, which carries the reason and
// the Retry-After hint; servers map it to 429 Too Many Requests.
package resilience

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// EWMA is a thread-safe exponentially weighted moving average of observed
// durations. The zero value is unusable; use NewEWMA.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	val   float64 // nanoseconds; 0 = no observations yet
	seen  bool
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1];
// alpha <= 0 defaults to 0.2 (each new sample contributes 20%).
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one duration into the average.
func (e *EWMA) Observe(d time.Duration) {
	e.mu.Lock()
	if !e.seen {
		e.val, e.seen = float64(d), true
	} else {
		e.val = e.alpha*float64(d) + (1-e.alpha)*e.val
	}
	e.mu.Unlock()
}

// Value returns the current average, or 0 before any observation.
func (e *EWMA) Value() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return time.Duration(e.val)
}

// ShedReason says why the Controller rejected a request.
type ShedReason int

const (
	// ShedQueueFull: the bounded wait queue was at capacity.
	ShedQueueFull ShedReason = iota
	// ShedDeadline: the request's remaining deadline could not cover the
	// observed solve-time EWMA, so admitting it would waste an engine.
	ShedDeadline
	// ShedQueueTimeout: the request waited QueueTimeout without getting a
	// slot.
	ShedQueueTimeout
)

// String names the reason for logs and error messages.
func (r ShedReason) String() string {
	switch r {
	case ShedQueueFull:
		return "queue full"
	case ShedDeadline:
		return "deadline shorter than expected solve time"
	case ShedQueueTimeout:
		return "queue wait timed out"
	}
	return "shed"
}

// ShedError reports a load-shedding rejection. Servers should map it to
// 429 Too Many Requests with a Retry-After header.
type ShedError struct {
	Reason ShedReason
	// RetryAfter estimates when capacity will be available: queue depth ×
	// solve-time EWMA ÷ slots (floored at one EWMA). Zero when the
	// controller has no latency observations yet.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("overloaded: %s (retry after %s)", e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// CanceledError reports a caller whose context fired while it was queued
// for admission. Distinct from load shedding — the server was not refusing
// work, the client stopped waiting — so it gets its own counter and is
// excluded from the admission-wait average. Unwrap exposes the context
// sentinel, keeping errors.Is(err, context.Canceled/DeadlineExceeded) — and
// the server's 504 mapping built on it — intact.
type CanceledError struct {
	// Err is the context's error (context.Canceled or DeadlineExceeded).
	Err error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("admission wait canceled: %v", e.Err)
}

func (e *CanceledError) Unwrap() error { return e.Err }

// Config parameterizes a Controller.
type Config struct {
	// Slots is the number of concurrently admitted requests (required > 0).
	Slots int
	// MaxQueue bounds requests waiting for a slot; arrivals beyond it are
	// shed immediately. 0 disables queueing entirely (a busy controller
	// sheds at once).
	MaxQueue int
	// QueueTimeout caps the time one request may wait for admission;
	// 0 = wait until the request's own context fires.
	QueueTimeout time.Duration
	// EWMAAlpha is the latency-average smoothing factor (0 = 0.2).
	EWMAAlpha float64
}

// Counters is a point-in-time snapshot of the controller's statistics.
type Counters struct {
	ShedQueueFull    int64
	ShedDeadline     int64
	ShedQueueTimeout int64
	// AdmissionWaitNS sums the queue time of requests that ran the wait to
	// its outcome (admitted or shed). Canceled waits are excluded — a
	// client giving up early would drag the average toward its own
	// impatience, not the server's backlog.
	AdmissionWaitNS int64
	Admitted        int64
	// CanceledWhileQueued counts waiters whose context fired in the queue.
	CanceledWhileQueued int64
}

// Total returns the total shed count across reasons.
func (c Counters) Total() int64 { return c.ShedQueueFull + c.ShedDeadline + c.ShedQueueTimeout }

// Controller is the bounded, deadline-aware admission queue. Create with
// NewController; all methods are safe for concurrent use.
type Controller struct {
	cfg   Config
	slots chan struct{}
	ewma  *EWMA

	queued   atomic.Int64
	waitNS   atomic.Int64
	admitted atomic.Int64

	shedFull     atomic.Int64
	shedDeadline atomic.Int64
	shedTimeout  atomic.Int64
	canceled     atomic.Int64
}

// NewController builds a Controller. Slots must be positive.
func NewController(cfg Config) *Controller {
	if cfg.Slots <= 0 {
		panic("resilience: NewController needs Slots > 0")
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	return &Controller{
		cfg:   cfg,
		slots: make(chan struct{}, cfg.Slots),
		ewma:  NewEWMA(cfg.EWMAAlpha),
	}
}

// Acquire obtains one slot, queueing within the configured bounds. It
// returns nil when admitted, a *ShedError when the request is shed, or a
// *CanceledError (unwrapping to ctx.Err()) when the caller's context fires
// while waiting. Every nil return must be paired with Release(1).
func (c *Controller) Acquire(ctx context.Context) error {
	// Uncontended fast path: no queueing, no deadline math.
	select {
	case c.slots <- struct{}{}:
		c.admitted.Add(1)
		return nil
	default:
	}
	// All slots busy. Reject outright when the caller cannot profit even
	// from an immediate slot: remaining deadline < expected solve time.
	if dl, ok := ctx.Deadline(); ok {
		if est := c.ewma.Value(); est > 0 && time.Until(dl) < est {
			c.shedDeadline.Add(1)
			return &ShedError{Reason: ShedDeadline, RetryAfter: c.RetryAfter()}
		}
	}
	// Claim a bounded queue position.
	for {
		n := c.queued.Load()
		if n >= int64(c.cfg.MaxQueue) {
			c.shedFull.Add(1)
			return &ShedError{Reason: ShedQueueFull, RetryAfter: c.RetryAfter()}
		}
		if c.queued.CompareAndSwap(n, n+1) {
			break
		}
	}
	start := time.Now()
	canceled := false
	defer func() {
		c.queued.Add(-1)
		if !canceled {
			c.waitNS.Add(int64(time.Since(start)))
		}
	}()
	var timeout <-chan time.Time
	if c.cfg.QueueTimeout > 0 {
		t := time.NewTimer(c.cfg.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case c.slots <- struct{}{}:
		c.admitted.Add(1)
		return nil
	case <-ctx.Done():
		canceled = true
		c.canceled.Add(1)
		return &CanceledError{Err: ctx.Err()}
	case <-timeout:
		c.shedTimeout.Add(1)
		return &ShedError{Reason: ShedQueueTimeout, RetryAfter: c.RetryAfter()}
	}
}

// TryExtra grabs up to n additional slots without queueing or blocking and
// returns how many it got. Batch-style requests use it to widen a worker
// pool when the controller is idle; the extras must be returned via
// Release.
func (c *Controller) TryExtra(n int) int {
	got := 0
	for ; got < n; got++ {
		select {
		case c.slots <- struct{}{}:
		default:
			return got
		}
	}
	return got
}

// Release returns n slots.
func (c *Controller) Release(n int) {
	for i := 0; i < n; i++ {
		<-c.slots
	}
}

// Observe feeds one completed-request latency into the EWMA that drives
// deadline shedding and Retry-After estimates.
func (c *Controller) Observe(d time.Duration) { c.ewma.Observe(d) }

// Estimate returns the current solve-time EWMA (0 before any observation).
func (c *Controller) Estimate() time.Duration { return c.ewma.Value() }

// QueueDepth returns the number of requests currently waiting for a slot.
func (c *Controller) QueueDepth() int64 { return c.queued.Load() }

// RetryAfter estimates how long a shed client should back off: the time
// for the current queue (plus the shed request itself) to drain through
// the slots at the observed per-request latency, floored at one EWMA.
// Zero before any latency observation.
func (c *Controller) RetryAfter() time.Duration {
	est := c.ewma.Value()
	if est <= 0 {
		return 0
	}
	d := time.Duration(c.queued.Load()+1) * est / time.Duration(c.cfg.Slots)
	return max(d, est)
}

// Counters returns a snapshot of the controller's statistics.
func (c *Controller) Counters() Counters {
	return Counters{
		ShedQueueFull:       c.shedFull.Load(),
		ShedDeadline:        c.shedDeadline.Load(),
		ShedQueueTimeout:    c.shedTimeout.Load(),
		AdmissionWaitNS:     c.waitNS.Load(),
		Admitted:            c.admitted.Load(),
		CanceledWhileQueued: c.canceled.Load(),
	}
}
