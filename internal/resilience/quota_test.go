package resilience

import (
	"testing"
	"time"
)

func TestParseQuotaSpecs(t *testing.T) {
	specs, err := ParseQuotaSpecs("alice=50:100, bob=10 ,*=5:20")
	if err != nil {
		t.Fatal(err)
	}
	if got := specs["alice"]; got != (QuotaSpec{Rate: 50, Burst: 100}) {
		t.Errorf("alice = %+v", got)
	}
	if got := specs["bob"]; got != (QuotaSpec{Rate: 10, Burst: 20}) {
		t.Errorf("bob = %+v, want default burst 2x rate", got)
	}
	if got := specs[DefaultTenant]; got != (QuotaSpec{Rate: 5, Burst: 20}) {
		t.Errorf("default = %+v", got)
	}
	if s, err := ParseQuotaSpecs(""); err != nil || s != nil {
		t.Errorf("empty = (%v, %v), want (nil, nil)", s, err)
	}
	for _, bad := range []string{"=5", "a", "a=0", "a=-1", "a=5:x", "a=5:0", "a=1,a=2"} {
		if _, err := ParseQuotaSpecs(bad); err == nil {
			t.Errorf("ParseQuotaSpecs(%q) accepted", bad)
		}
	}
}

func TestTenantQuotaBurstAndRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	q := NewTenantQuotas(map[string]QuotaSpec{"a": {Rate: 2, Burst: 3}})
	q.SetClock(func() time.Time { return now })
	for i := 0; i < 3; i++ {
		if ok, _ := q.Allow("a"); !ok {
			t.Fatalf("burst request %d shed", i)
		}
	}
	ok, retry := q.Allow("a")
	if ok {
		t.Fatal("4th burst request allowed")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 500ms]-ish", retry)
	}
	// 1 s at 2 tokens/s refills 2 requests.
	now = now.Add(time.Second)
	for i := 0; i < 2; i++ {
		if ok, _ := q.Allow("a"); !ok {
			t.Fatalf("refilled request %d shed", i)
		}
	}
	if ok, _ := q.Allow("a"); ok {
		t.Fatal("over-refilled")
	}
	c := q.Counters()
	if c.Allowed != 5 || c.Shed != 2 || c.ShedByTenant["a"] != 2 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestTenantQuotaIsolation(t *testing.T) {
	now := time.Unix(1000, 0)
	q := NewTenantQuotas(map[string]QuotaSpec{"noisy": {Rate: 1, Burst: 1}})
	q.SetClock(func() time.Time { return now })
	if ok, _ := q.Allow("noisy"); !ok {
		t.Fatal("first noisy request shed")
	}
	if ok, _ := q.Allow("noisy"); ok {
		t.Fatal("noisy overflow allowed")
	}
	// Unlisted tenants are untouched by the noisy tenant's exhaustion.
	for i := 0; i < 50; i++ {
		if ok, _ := q.Allow("quiet"); !ok {
			t.Fatal("unlisted tenant shed without a default spec")
		}
	}
}

func TestTenantQuotaDefaultSpec(t *testing.T) {
	now := time.Unix(1000, 0)
	q := NewTenantQuotas(map[string]QuotaSpec{DefaultTenant: {Rate: 1, Burst: 2}})
	q.SetClock(func() time.Time { return now })
	// Each unlisted tenant gets its own bucket from the "*" spec.
	for _, tenant := range []string{"x", "y"} {
		if ok, _ := q.Allow(tenant); !ok {
			t.Fatalf("tenant %s first request shed", tenant)
		}
		if ok, _ := q.Allow(tenant); !ok {
			t.Fatalf("tenant %s second request shed", tenant)
		}
		if ok, _ := q.Allow(tenant); ok {
			t.Fatalf("tenant %s third request allowed beyond burst", tenant)
		}
	}
}

func TestTenantQuotasNil(t *testing.T) {
	var q *TenantQuotas
	if ok, retry := q.Allow("anyone"); !ok || retry != 0 {
		t.Fatal("nil quotas must allow everything")
	}
	if c := q.Counters(); c.Allowed != 0 || c.Shed != 0 {
		t.Fatalf("nil counters = %+v", c)
	}
	if NewTenantQuotas(nil) != nil {
		t.Fatal("NewTenantQuotas(nil) should return nil")
	}
}
