package resilience

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Per-tenant quotas compose with the admission Controller: the Controller
// protects the server's total capacity, the quotas protect tenants from
// each other. A tenant burning through its bucket is shed with its own
// 429 before it ever reaches admission, so one tenant's overload never
// consumes queue positions that belong to everyone else.

// QuotaSpec is one tenant's token bucket: Rate tokens per second refill,
// Burst bucket capacity.
type QuotaSpec struct {
	Rate  float64
	Burst int
}

// DefaultTenant keys the spec applied to tenants with no explicit entry
// (the "*" entry of a -tenant-quotas flag). Absent a default, unlisted
// tenants are unlimited — quotas are opt-in per tenant.
const DefaultTenant = "*"

// ParseQuotaSpecs decodes a -tenant-quotas flag value:
//
//	tenantA=50:100,tenantB=10,*=5:20
//
// Each entry is tenant=rate[:burst] with rate in requests/second; burst
// defaults to max(2*rate, 1). "*" sets the default for unlisted tenants.
func ParseQuotaSpecs(s string) (map[string]QuotaSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	out := make(map[string]QuotaSpec)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, spec, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("quota %q: want tenant=rate[:burst]", part)
		}
		rateStr, burstStr, hasBurst := strings.Cut(spec, ":")
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("quota %q: bad rate %q", part, rateStr)
		}
		q := QuotaSpec{Rate: rate, Burst: max(int(2*rate), 1)}
		if hasBurst {
			b, err := strconv.Atoi(burstStr)
			if err != nil || b <= 0 {
				return nil, fmt.Errorf("quota %q: bad burst %q", part, burstStr)
			}
			q.Burst = b
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("quota %q: duplicate tenant", part)
		}
		out[name] = q
	}
	return out, nil
}

// TenantQuotas enforces per-tenant token buckets. Buckets refill
// continuously at Rate tokens/second up to Burst. Create with
// NewTenantQuotas; all methods are safe for concurrent use.
type TenantQuotas struct {
	specs map[string]QuotaSpec
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*tenantBucket

	shedByTenant map[string]int64
	allowed      int64
	shed         int64
}

type tenantBucket struct {
	tokens float64
	last   time.Time
	spec   QuotaSpec
}

// NewTenantQuotas builds the registry; nil/empty specs return nil (no
// quota enforcement), so callers gate on the pointer.
func NewTenantQuotas(specs map[string]QuotaSpec) *TenantQuotas {
	if len(specs) == 0 {
		return nil
	}
	return &TenantQuotas{
		specs:        specs,
		now:          time.Now,
		buckets:      make(map[string]*tenantBucket),
		shedByTenant: make(map[string]int64),
	}
}

// SetClock injects a test clock.
func (q *TenantQuotas) SetClock(now func() time.Time) { q.now = now }

// Allow charges one request to tenant. ok=false means the tenant's
// bucket is dry; retryAfter is the time until one token refills. Tenants
// with no spec (and no "*" default) are always allowed.
func (q *TenantQuotas) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	if q == nil {
		return true, 0
	}
	spec, found := q.specs[tenant]
	if !found {
		spec, found = q.specs[DefaultTenant]
		if !found {
			q.mu.Lock()
			q.allowed++
			q.mu.Unlock()
			return true, 0
		}
	}
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		b = &tenantBucket{tokens: float64(spec.Burst), last: now, spec: spec}
		q.buckets[tenant] = b
	}
	b.tokens = min(b.tokens+now.Sub(b.last).Seconds()*b.spec.Rate, float64(b.spec.Burst))
	b.last = now
	if b.tokens < 1 {
		q.shed++
		q.shedByTenant[tenant]++
		wait := time.Duration((1 - b.tokens) / b.spec.Rate * float64(time.Second))
		return false, max(wait, time.Millisecond)
	}
	b.tokens--
	q.allowed++
	return true, 0
}

// QuotaCounters is a point-in-time snapshot of quota decisions.
type QuotaCounters struct {
	Allowed int64
	Shed    int64
	// ShedByTenant breaks Shed down per tenant name.
	ShedByTenant map[string]int64
}

// Counters snapshots the registry's statistics (zero value when q is nil).
func (q *TenantQuotas) Counters() QuotaCounters {
	if q == nil {
		return QuotaCounters{}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	by := make(map[string]int64, len(q.shedByTenant))
	for k, v := range q.shedByTenant {
		by[k] = v
	}
	return QuotaCounters{Allowed: q.allowed, Shed: q.shed, ShedByTenant: by}
}
