// Package lillis implements the Lillis–Cheng–Lin extension of van Ginneken's
// algorithm to b buffer types (IEEE JSSC 1996) — the O(b²n²) baseline the
// paper measures against.
//
// Its AddBuffer operation is the quadratic-in-b step the paper removes: for
// each of the b types it scans the whole candidate list (O(bk)) to find the
// best unbuffered candidate, and then inserts each of the b new candidates
// by an O(k) linear-scan insertion (another O(bk)).
package lillis

import (
	"errors"
	"fmt"

	"bufferkit/internal/candidate"
	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/tree"
)

// Stats are instrumentation counters for one run.
type Stats struct {
	// Positions is the number of buffer positions processed.
	Positions int
	// MaxListLen is the largest candidate list length observed.
	MaxListLen int
	// SumListLen accumulates list length at every buffer position, for
	// average-length analysis (why runtime looks linear in b in practice).
	SumListLen int
	// BetasInserted counts buffered candidates that survived insertion.
	BetasInserted int
}

// Result is the outcome of a run.
type Result struct {
	// Slack is the optimal slack at the driver input, in ps.
	Slack float64
	// Placement maps vertex index to a library type index or -1.
	Placement delay.Placement
	// Candidates is the final candidate count at the root.
	Candidates int
	Stats      Stats
}

// Insert computes optimal buffer insertion on t with library lib and driver
// drv. Inverting types and negative-polarity sinks are not supported by this
// baseline (matching the paper's experimental setup); use internal/core for
// polarity-aware insertion.
func Insert(t *tree.Tree, lib library.Library, drv delay.Driver) (*Result, error) {
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	if lib.HasInverters() {
		return nil, errors.New("lillis: inverting types not supported; use internal/core")
	}
	for i := range t.Verts {
		if t.Verts[i].Kind == tree.Sink && t.Verts[i].Pol == tree.Negative {
			return nil, fmt.Errorf("lillis: sink %d requires negative polarity; library has no inverters", i)
		}
	}

	res := &Result{Placement: delay.NewPlacement(t.Len())}
	lists := make([]*candidate.List, t.Len())
	betas := make([]candidate.Beta, 0, len(lib))
	for _, v := range t.PostOrder() {
		vert := &t.Verts[v]
		if vert.Kind == tree.Sink {
			lists[v] = candidate.NewSink(vert.RAT, vert.Cap, v)
			continue
		}
		var cur *candidate.List
		for _, c := range t.Children(v) {
			lc := lists[c]
			lists[c] = nil
			lc.AddWire(t.Verts[c].EdgeR, t.Verts[c].EdgeC)
			if cur == nil {
				cur = lc
			} else {
				m := candidate.Merge(cur, lc)
				cur.Recycle()
				lc.Recycle()
				cur = m
			}
		}
		if vert.BufferOK {
			res.Stats.Positions++
			res.Stats.SumListLen += cur.Len()
			betas = addBuffer(cur, lib, vert.Allowed, v, betas[:0])
			for i := range betas {
				if cur.InsertOne(betas[i].Q, betas[i].C, betas[i].Dec) {
					res.Stats.BetasInserted++
				}
			}
		}
		if cur.Len() > res.Stats.MaxListLen {
			res.Stats.MaxListLen = cur.Len()
		}
		lists[v] = cur
	}

	root := lists[0]
	res.Candidates = root.Len()
	best := root.BestForR(drv.R)
	res.Slack = best.Q - drv.R*best.C - drv.K
	best.Dec.Fill(res.Placement)
	return res, nil
}

// addBuffer generates one buffered candidate per allowed type by a full
// linear scan of the list — the O(b·k) step.
func addBuffer(l *candidate.List, lib library.Library, allowed []int, vertex int, out []candidate.Beta) []candidate.Beta {
	for ti := range lib {
		if len(allowed) > 0 && !contains(allowed, ti) {
			continue
		}
		b := lib[ti]
		best := l.BestForR(b.R)
		out = append(out, candidate.Beta{
			Q:      best.Q - b.R*best.C - b.K,
			C:      b.Cin,
			Buffer: ti,
			Dec:    &candidate.Decision{Kind: candidate.DecBuffer, Vertex: vertex, Buffer: ti, A: best.Dec},
		})
	}
	return out
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
