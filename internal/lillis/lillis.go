// Package lillis implements the Lillis–Cheng–Lin extension of van Ginneken's
// algorithm to b buffer types (IEEE JSSC 1996) — the O(b²n²) baseline the
// paper measures against.
//
// Its AddBuffer operation is the quadratic-in-b step the paper removes: for
// each of the b types it scans the whole candidate list (O(bk)) to find the
// best unbuffered candidate, and then inserts each of the b new candidates
// by an O(k) linear-scan insertion (another O(bk)).
//
// Like internal/core, the baseline exposes a reusable Engine with the same
// arena-backed allocation discipline, and like internal/core its dynamic
// program is written once against candidate.Rep, so SetBackend selects the
// doubly-linked list or the structure-of-arrays representation — benchmark
// comparisons between the two algorithms (and the two representations)
// measure the algorithms, not their memory management.
package lillis

import (
	"context"

	"bufferkit/internal/candidate"
	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/solvererr"
	"bufferkit/internal/tree"
)

// Stats are instrumentation counters for one run.
type Stats struct {
	// Positions is the number of buffer positions processed.
	Positions int
	// MaxListLen is the largest candidate list length observed.
	MaxListLen int
	// SumListLen accumulates list length at every buffer position, for
	// average-length analysis (why runtime looks linear in b in practice).
	SumListLen int
	// BetasInserted counts buffered candidates that survived insertion.
	BetasInserted int
}

// Result is the outcome of a run.
type Result struct {
	// Slack is the optimal slack at the driver input, in ps.
	Slack float64
	// Placement maps vertex index to a library type index or -1.
	Placement delay.Placement
	// Candidates is the final candidate count at the root.
	Candidates int
	Stats      Stats
}

// Engine is a reusable Lillis engine: one decision arena plus a lazily
// built implementation per candidate-list backend (per-vertex list table
// and beta scratch), all kept across runs. Not safe for concurrent use.
type Engine struct {
	arena   *candidate.Arena
	backend candidate.Backend

	list *lengine[*candidate.List, candidate.ListAlloc]
	soa  *lengine[*candidate.SoAList, candidate.SoAAlloc]
}

// NewEngine returns an engine with an empty arena, running on the default
// backend.
func NewEngine() *Engine {
	return &Engine{arena: candidate.NewArena()}
}

// SetBackend selects the candidate-list representation for subsequent runs.
// Results are identical across backends.
func (e *Engine) SetBackend(b candidate.Backend) { e.backend = b }

// Insert computes optimal buffer insertion on t with library lib and driver
// drv. Inverting types and negative-polarity sinks are not supported by this
// baseline (matching the paper's experimental setup); use internal/core for
// polarity-aware insertion.
func Insert(t *tree.Tree, lib library.Library, drv delay.Driver) (*Result, error) {
	return NewEngine().Insert(t, lib, drv)
}

// Insert runs the baseline, reusing the engine's arena and scratch state.
func (e *Engine) Insert(t *tree.Tree, lib library.Library, drv delay.Driver) (*Result, error) {
	res := &Result{}
	if err := e.Run(t, lib, drv, res); err != nil {
		return nil, err
	}
	return res, nil
}

// Run is Insert writing into a caller-owned Result, reusing res.Placement
// when its capacity suffices. A warm engine runs allocation-free.
func (e *Engine) Run(t *tree.Tree, lib library.Library, drv delay.Driver, res *Result) error {
	return e.RunContext(context.Background(), t, lib, drv, res)
}

// RunContext is Run under a context: the per-vertex loop polls ctx at a
// coarse grain and aborts with an error wrapping solvererr.ErrCanceled
// when it fires.
func (e *Engine) RunContext(ctx context.Context, t *tree.Tree, lib library.Library, drv delay.Driver, res *Result) error {
	if err := lib.Validate(); err != nil {
		return err
	}
	if lib.HasInverters() {
		return solvererr.Validation("lillis", "library", "inverting types not supported; use internal/core")
	}
	for i := range t.Verts {
		if t.Verts[i].Kind == tree.Sink && t.Verts[i].Pol == tree.Negative {
			return solvererr.Validation("lillis", "polarity",
				"sink requires negative polarity; library has no inverters").AtVertex(i)
		}
	}

	switch e.backend.Resolve() {
	case candidate.BackendList:
		if e.list == nil {
			e.list = &lengine[*candidate.List, candidate.ListAlloc]{arena: e.arena}
		}
		return e.list.runContext(ctx, t, lib, drv, res)
	default:
		if e.soa == nil {
			e.soa = &lengine[*candidate.SoAList, candidate.SoAAlloc]{arena: e.arena}
		}
		return e.soa.runContext(ctx, t, lib, drv, res)
	}
}

// lengine is the generic baseline implementation over one candidate
// representation.
type lengine[L candidate.Rep[L], A candidate.Alloc[L]] struct {
	alloc A
	arena *candidate.Arena
	lists []L
	betas []candidate.Beta
}

func (e *lengine[L, A]) runContext(ctx context.Context, t *tree.Tree, lib library.Library, drv delay.Driver, res *Result) error {
	e.arena.Reset()
	n := t.Len()
	e.lists = candidate.Resize(e.lists, n)
	clear(e.lists)
	e.betas = candidate.Resize(e.betas, len(lib))[:0]
	res.Placement = res.Placement.Reuse(n)
	res.Stats = Stats{}

	lists := e.lists
	for vi, v := range t.PostOrder() {
		if vi&solvererr.PollMask == 0 && ctx.Err() != nil {
			return solvererr.Canceled(ctx)
		}
		vert := &t.Verts[v]
		if vert.Kind == tree.Sink {
			lists[v] = e.alloc.Sink(e.arena, vert.RAT, vert.Cap, v)
			continue
		}
		var zero L
		cur := zero
		for _, c := range t.Children(v) {
			lc := lists[c]
			lists[c] = zero
			lc.AddWire(t.Verts[c].EdgeR, t.Verts[c].EdgeC)
			if cur == zero {
				cur = lc
			} else {
				m := cur.MergeWith(lc)
				cur.Free()
				lc.Free()
				cur = m
			}
		}
		if vert.BufferOK {
			res.Stats.Positions++
			res.Stats.SumListLen += cur.Len()
			e.betas = addBuffer(e.arena, cur, lib, vert.Allowed, v, e.betas[:0])
			for i := range e.betas {
				if cur.InsertOne(e.betas[i].Q, e.betas[i].C, e.betas[i].Dec) {
					res.Stats.BetasInserted++
				}
			}
		}
		if cur.Len() > res.Stats.MaxListLen {
			res.Stats.MaxListLen = cur.Len()
		}
		lists[v] = cur
	}

	root := lists[0]
	res.Candidates = root.Len()
	q, c, dec, _ := root.Best(drv.R)
	res.Slack = q - drv.R*c - drv.K
	e.arena.Fill(dec, res.Placement)
	return nil
}

// addBuffer generates one buffered candidate per allowed type by a full
// linear scan of the list — the O(b·k) step.
func addBuffer[L candidate.Rep[L]](ar *candidate.Arena, l L, lib library.Library, allowed []int, vertex int, out []candidate.Beta) []candidate.Beta {
	for ti := range lib {
		if len(allowed) > 0 && !contains(allowed, ti) {
			continue
		}
		b := lib[ti]
		q, c, dec, ok := l.Best(b.R)
		if !ok {
			continue
		}
		out = append(out, candidate.Beta{
			Q:      q - b.R*c - b.K,
			C:      b.Cin,
			Buffer: ti,
			Dec:    ar.BufferDec(vertex, ti, dec),
		})
	}
	return out
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
