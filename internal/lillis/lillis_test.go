package lillis

import (
	"strings"
	"testing"

	"bufferkit/internal/bruteforce"
	"bufferkit/internal/candidate"
	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/netgen"
	"bufferkit/internal/segment"
	"bufferkit/internal/testutil"
	"bufferkit/internal/tree"
	"bufferkit/internal/vanginneken"
)

func smallLib() library.Library {
	return library.Library{
		{Name: "weak", R: 2.0, Cin: 0.8, K: 8},
		{Name: "mid", R: 0.9, Cin: 2.0, K: 10},
		{Name: "strong", R: 0.4, Cin: 5.0, K: 12},
	}
}

func TestMatchesBruteForceOnRandomSmallNets(t *testing.T) {
	lib := smallLib()
	drv := delay.Driver{R: 0.4, K: 3}
	for seed := int64(0); seed < 50; seed++ {
		tr := netgen.RandomSmall(seed, 5, 0)
		want, err := bruteforce.Best(tr, lib, drv)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Insert(tr, lib, drv)
		if err != nil {
			t.Fatal(err)
		}
		if !testutil.AlmostEqual(got.Slack, want.Slack) {
			t.Fatalf("seed %d: lillis %.12g, brute force %.12g", seed, got.Slack, want.Slack)
		}
		testutil.CheckPlacement(t, tr, lib, got.Placement, drv, got.Slack, "lillis random")
	}
}

func TestMatchesVanGinnekenWithOneType(t *testing.T) {
	buf := library.Buffer{Name: "b", R: 0.5, Cin: 1.5, K: 6}
	drv := delay.Driver{R: 0.3, K: 1}
	for seed := int64(0); seed < 20; seed++ {
		base := netgen.Random(netgen.Opts{Sinks: 8, Seed: seed})
		tr, err := segment.Uniform(base, 3)
		if err != nil {
			t.Fatal(err)
		}
		vg, err := vanginneken.Insert(tr, buf, drv)
		if err != nil {
			t.Fatal(err)
		}
		ll, err := Insert(tr, library.Library{buf}, drv)
		if err != nil {
			t.Fatal(err)
		}
		if !testutil.AlmostEqual(vg.Slack, ll.Slack) {
			t.Fatalf("seed %d: vg %.12g vs lillis %.12g", seed, vg.Slack, ll.Slack)
		}
	}
}

func TestRespectsAllowedRestrictions(t *testing.T) {
	lib := smallLib()
	b := tree.NewBuilder()
	v := b.AddBufferPosRestricted(0, 0.5, 30, []int{0}) // only the weak type
	b.AddSink(v, 0.5, 30, 10, 1000)
	tr := b.MustBuild()
	drv := delay.Driver{R: 1.5}

	res, err := Insert(tr, lib, drv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement[v] == 1 || res.Placement[v] == 2 {
		t.Fatalf("placed disallowed type %d", res.Placement[v])
	}
	want, err := bruteforce.Best(tr, lib, drv)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(res.Slack, want.Slack) {
		t.Fatalf("slack %.12g, brute force %.12g", res.Slack, want.Slack)
	}
}

func TestMoreTypesNeverHurt(t *testing.T) {
	// Optimality implies monotonicity: adding types can only improve slack.
	drv := delay.Driver{R: 0.4}
	for seed := int64(0); seed < 10; seed++ {
		base := netgen.Random(netgen.Opts{Sinks: 6, Seed: seed})
		tr, err := segment.Uniform(base, 2)
		if err != nil {
			t.Fatal(err)
		}
		lib := library.Generate(8)
		prev := 0.0
		for _, b := range []int{1, 2, 4, 8} {
			res, err := Insert(tr, lib[:b], drv)
			if err != nil {
				t.Fatal(err)
			}
			if b > 1 && res.Slack < prev-testutil.Tol {
				t.Fatalf("seed %d: slack fell from %.12g to %.12g when growing library to %d", seed, prev, res.Slack, b)
			}
			prev = res.Slack
		}
	}
}

func TestStatsAreCoherent(t *testing.T) {
	lib := library.Generate(8)
	tr := netgen.TwoPin(10000, 50, 10, 1000, netgen.PaperWire())
	res, err := Insert(tr, lib, delay.Driver{R: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Positions != 50 {
		t.Fatalf("Positions = %d, want 50", res.Stats.Positions)
	}
	if res.Stats.MaxListLen < 1 || res.Stats.SumListLen < res.Stats.Positions {
		t.Fatalf("implausible stats: %+v", res.Stats)
	}
	if res.Stats.BetasInserted < 1 {
		t.Fatal("no buffered candidates ever survived")
	}
	// b·n+1 bound from the paper's preliminaries.
	if bound := len(lib)*tr.NumBufferPositions() + 1; res.Stats.MaxListLen > bound {
		t.Fatalf("MaxListLen %d exceeds bn+1 = %d", res.Stats.MaxListLen, bound)
	}
	testutil.CheckPlacement(t, tr, lib, res.Placement, delay.Driver{R: 0.2}, res.Slack, "lillis stats")
}

func TestRejectsInverters(t *testing.T) {
	tr := netgen.TwoPin(100, 1, 1, 0, netgen.PaperWire())
	lib := library.GenerateWithInverters(4)
	if _, err := Insert(tr, lib, delay.Driver{}); err == nil || !strings.Contains(err.Error(), "inverting") {
		t.Fatalf("err = %v", err)
	}
}

func TestRejectsNegativeSinks(t *testing.T) {
	b := tree.NewBuilder()
	v := b.AddBufferPos(0, 1, 1)
	b.AddSinkPol(v, 1, 1, 2, 100, tree.Negative)
	tr := b.MustBuild()
	if _, err := Insert(tr, smallLib(), delay.Driver{}); err == nil || !strings.Contains(err.Error(), "polarity") {
		t.Fatalf("err = %v", err)
	}
}

func TestRejectsInvalidLibrary(t *testing.T) {
	tr := netgen.TwoPin(100, 1, 1, 0, netgen.PaperWire())
	if _, err := Insert(tr, library.Library{}, delay.Driver{}); err == nil {
		t.Fatal("accepted empty library")
	}
}

// TestWarmEngineMatchesAndDoesNotAllocate mirrors the core engine's reuse
// contract on the baseline: a warm engine re-running the same instance
// produces identical results with zero steady-state allocations, so
// benchmark comparisons between the algorithms are apples-to-apples.
func TestWarmEngineMatchesAndDoesNotAllocate(t *testing.T) {
	lib := library.Generate(8)
	tr := netgen.TwoPin(8000, 40, 10, 1000, netgen.PaperWire())
	drv := delay.Driver{R: 0.2, K: 15}

	cold, err := Insert(tr, lib, drv)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	res := &Result{}
	if err := eng.Run(tr, lib, drv, res); err != nil {
		t.Fatal(err)
	}
	if res.Slack != cold.Slack {
		t.Fatalf("warm %v != cold %v", res.Slack, cold.Slack)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := eng.Run(tr, lib, drv, res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Fatalf("warm lillis run allocates %.1f objects per run, want 0", allocs)
	}
	if res.Slack != cold.Slack {
		t.Fatalf("warm runs diverged: %v != %v", res.Slack, cold.Slack)
	}
}

// TestLillisBackendsAgreeExactly runs the baseline on both candidate-list
// representations and demands bit-exact agreement, including the warm
// zero-allocation guarantee on each.
func TestLillisBackendsAgreeExactly(t *testing.T) {
	drv := delay.Driver{R: 0.3, K: 5}
	for _, b := range []int{2, 8} {
		lib := library.Generate(b)
		for seed := int64(0); seed < 6; seed++ {
			tr := netgen.Random(netgen.Opts{Sinks: 8, Seed: seed})
			results := map[candidate.Backend]*Result{}
			for _, backend := range []candidate.Backend{candidate.BackendList, candidate.BackendSoA} {
				eng := NewEngine()
				eng.SetBackend(backend)
				res := &Result{}
				if err := eng.Run(tr, lib, drv, res); err != nil {
					t.Fatal(err)
				}
				allocs := testing.AllocsPerRun(10, func() {
					if err := eng.Run(tr, lib, drv, res); err != nil {
						t.Fatal(err)
					}
				})
				if allocs > 0.5 {
					t.Fatalf("backend=%v: warm lillis run allocates %.1f/run, want 0", backend, allocs)
				}
				results[backend] = res
			}
			l, s := results[candidate.BackendList], results[candidate.BackendSoA]
			if l.Slack != s.Slack || l.Candidates != s.Candidates || l.Stats != s.Stats {
				t.Fatalf("b=%d seed=%d: backends diverge:\nlist %+v\nsoa  %+v", b, seed, l, s)
			}
			for v := range l.Placement {
				if l.Placement[v] != s.Placement[v] {
					t.Fatalf("b=%d seed=%d: placements differ at vertex %d", b, seed, v)
				}
			}
		}
	}
}
