package tree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildY returns the canonical Y-shaped test net:
//
//	src --(1)-- b1 --(2)-- s1
//	              \--(3)-- s2
func buildY(t *testing.T) *Tree {
	t.Helper()
	b := NewBuilder()
	v1 := b.AddBufferPos(0, 0.1, 10)
	b.AddSink(v1, 0.2, 20, 5, 1000)
	b.AddSink(v1, 0.3, 30, 7, 900)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuilderBasic(t *testing.T) {
	tr := buildY(t)
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.NumSinks() != 2 || tr.NumBufferPositions() != 1 {
		t.Fatalf("sinks=%d positions=%d, want 2 and 1", tr.NumSinks(), tr.NumBufferPositions())
	}
	if got := tr.Children(1); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Children(1) = %v, want [2 3]", got)
	}
	if tr.IsLeaf(1) || !tr.IsLeaf(2) {
		t.Fatal("leaf detection wrong")
	}
	if tr.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2", tr.Depth())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPostOrderChildrenBeforeParents(t *testing.T) {
	tr := buildY(t)
	po := tr.PostOrder()
	if len(po) != tr.Len() {
		t.Fatalf("postorder covers %d of %d vertices", len(po), tr.Len())
	}
	seen := make([]bool, tr.Len())
	for _, v := range po {
		for _, c := range tr.Children(v) {
			if !seen[c] {
				t.Fatalf("vertex %d visited before its child %d", v, c)
			}
		}
		seen[v] = true
	}
	if po[len(po)-1] != 0 {
		t.Fatalf("root not last in postorder: %v", po)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func(b *Builder)
		want string
	}{
		{"bad parent", func(b *Builder) { b.AddSink(5, 0, 0, 1, 0) }, "parent 5 does not exist"},
		{"sink parent", func(b *Builder) {
			s := b.AddSink(0, 0, 0, 1, 0)
			b.AddSink(s, 0, 0, 1, 0)
		}, "is a sink"},
		{"negative edge R", func(b *Builder) { b.AddSink(0, -1, 0, 1, 0) }, "negative edge RC"},
		{"negative cap", func(b *Builder) { b.AddSink(0, 0, 0, -2, 0) }, "negative capacitance"},
		{"internal leaf", func(b *Builder) { b.AddInternal(0, 1, 1) }, "is a leaf"},
		{"bare source", func(b *Builder) {}, "source has no children"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			tc.f(b)
			_, err := b.Build()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestBuilderFirstErrorWins(t *testing.T) {
	b := NewBuilder()
	b.AddSink(9, 0, 0, 1, 0) // error 1
	b.AddSink(0, -1, 0, 1, 0)
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "parent 9") {
		t.Fatalf("err = %v, want the first error", err)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder().MustBuild()
}

func TestRestrictedBufferPos(t *testing.T) {
	b := NewBuilder()
	v := b.AddBufferPosRestricted(0, 1, 1, []int{0, 2})
	b.AddSink(v, 0, 0, 1, 0)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Verts[v].Allowed; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Allowed = %v, want [0 2]", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := buildY(t)
	tr.Verts[1].Allowed = []int{1}
	cl := tr.Clone()
	cl.Verts[1].Allowed[0] = 7
	cl.Verts[2].Cap = 99
	if tr.Verts[1].Allowed[0] != 1 || tr.Verts[2].Cap != 5 {
		t.Fatal("Clone shares state with original")
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTotalWireCap(t *testing.T) {
	tr := buildY(t)
	if got := tr.TotalWireCap(); got != 60 {
		t.Fatalf("TotalWireCap = %g, want 60", got)
	}
}

func TestSinksAndPositions(t *testing.T) {
	tr := buildY(t)
	if s := tr.Sinks(); len(s) != 2 || s[0] != 2 || s[1] != 3 {
		t.Fatalf("Sinks = %v", s)
	}
	if p := tr.BufferPositions(); len(p) != 1 || p[0] != 1 {
		t.Fatalf("BufferPositions = %v", p)
	}
}

func TestDeepChainPostOrder(t *testing.T) {
	// 100k-vertex chain: iterative traversal must not overflow.
	b := NewBuilder()
	p := 0
	for i := 0; i < 100_000; i++ {
		p = b.AddBufferPos(p, 0.001, 0.01)
	}
	b.AddSink(p, 0, 0, 1, 0)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	po := tr.PostOrder()
	if len(po) != tr.Len() || po[0] != tr.Len()-1 || po[len(po)-1] != 0 {
		t.Fatal("postorder wrong on deep chain")
	}
	if tr.Depth() != 100_001 {
		t.Fatalf("Depth = %d", tr.Depth())
	}
}

// TestQuickRandomTreesValid grows random trees through the Builder and
// checks structural invariants always hold.
func TestQuickRandomTreesValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		open := []int{0} // vertices that may take children
		nv := 1
		for nv < 2+rng.Intn(40) {
			p := open[rng.Intn(len(open))]
			switch rng.Intn(3) {
			case 0:
				b.AddSink(p, rng.Float64(), rng.Float64(), rng.Float64()*10, rng.Float64()*100)
			case 1:
				open = append(open, b.AddInternal(p, rng.Float64(), rng.Float64()))
			default:
				open = append(open, b.AddBufferPos(p, rng.Float64(), rng.Float64()))
			}
			nv++
		}
		// Close every childless internal vertex with a sink.
		tr, err := b.buildClosed()
		if err != nil {
			return false
		}
		return tr.Validate() == nil && len(tr.PostOrder()) == tr.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// buildClosed is a test helper: adds a sink under every childless
// non-sink vertex, then builds.
func (b *Builder) buildClosed() (*Tree, error) {
	hasChild := make([]bool, len(b.verts))
	for i := 1; i < len(b.verts); i++ {
		hasChild[b.verts[i].Parent] = true
	}
	n := len(b.verts)
	for i := 0; i < n; i++ {
		if !hasChild[i] && b.verts[i].Kind != Sink {
			b.AddSink(i, 0.1, 0.1, 1, 100)
		}
	}
	return b.Build()
}

func TestKindAndPolarityStrings(t *testing.T) {
	if Source.String() != "source" || Sink.String() != "sink" || Internal.String() != "internal" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown Kind string wrong")
	}
	if Positive.String() != "+" || Negative.String() != "-" {
		t.Fatal("Polarity strings wrong")
	}
}
