// Package tree provides the routing-tree substrate for buffer insertion.
//
// A net is a rooted tree T = (V, E). The root is the source (driver pin),
// leaves are sinks with a load capacitance and a required arrival time (RAT),
// and internal vertices either mark legal buffer positions or are plain
// branch/via points. Each edge carries lumped wire resistance and capacitance.
//
// Units follow the repository convention: resistance kΩ, capacitance fF,
// time ps (kΩ·fF = ps), distance µm.
package tree

import (
	"errors"
	"fmt"
)

// Kind classifies a vertex of the routing tree.
type Kind uint8

const (
	// Source is the root of the tree, the net's driver pin.
	Source Kind = iota
	// Sink is a leaf with load capacitance and required arrival time.
	Sink
	// Internal is a non-root, non-leaf vertex: a branch point, a via, or a
	// legal buffer position (when BufferOK is set).
	Internal
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Source:
		return "source"
	case Sink:
		return "sink"
	case Internal:
		return "internal"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Polarity is the signal polarity a sink requires, relative to the signal
// the source drives. Libraries containing inverters can satisfy Negative
// sinks; libraries of plain buffers cannot.
type Polarity uint8

const (
	// Positive means the sink wants the signal as driven by the source.
	Positive Polarity = iota
	// Negative means the sink wants the inverted signal.
	Negative
)

// String implements fmt.Stringer.
func (p Polarity) String() string {
	if p == Negative {
		return "-"
	}
	return "+"
}

// Vertex is one node of a routing tree. The zero value is a plain internal
// vertex that does not allow buffering.
type Vertex struct {
	Kind Kind
	// Name is an optional human-readable label used by netlist I/O.
	Name string

	// Cap is the sink load capacitance in fF. Sinks only.
	Cap float64
	// RAT is the required arrival time in ps. Sinks only.
	RAT float64
	// Pol is the required signal polarity. Sinks only.
	Pol Polarity

	// BufferOK marks a legal buffer position. Internal vertices only.
	BufferOK bool
	// Allowed optionally restricts which library types may be used at this
	// position (indices into the library). nil or empty means every type is
	// allowed. Ignored unless BufferOK is set.
	Allowed []int

	// Parent is the index of the parent vertex, or -1 for the root.
	Parent int
	// EdgeR and EdgeC are the lumped resistance (kΩ) and capacitance (fF)
	// of the edge from Parent to this vertex. Zero for the root.
	EdgeR, EdgeC float64
}

// Tree is a rooted routing tree stored as a parent-pointer vertex slice.
// Vertex 0 is always the source. Construct trees with a Builder and treat
// them as immutable afterwards; the insertion algorithms never mutate them.
type Tree struct {
	Verts []Vertex

	// children[v] lists the child vertex indices of v, derived once by the
	// Builder so traversals do not rebuild adjacency.
	children [][]int
	// postorder caches PostOrder.
	postorder []int
}

// Len returns the number of vertices.
func (t *Tree) Len() int { return len(t.Verts) }

// Children returns the child indices of vertex v. The returned slice is
// shared; callers must not modify it.
func (t *Tree) Children(v int) []int { return t.children[v] }

// Root returns the index of the source vertex (always 0).
func (t *Tree) Root() int { return 0 }

// IsLeaf reports whether v has no children.
func (t *Tree) IsLeaf(v int) bool { return len(t.children[v]) == 0 }

// PostOrder returns the vertex indices in post order (children before
// parents, root last). The returned slice is shared; callers must not
// modify it. The order is computed iteratively so arbitrarily deep chains
// (e.g. 2-pin nets with tens of thousands of segments) are safe.
func (t *Tree) PostOrder() []int { return t.postorder }

// Sinks returns the indices of all sink vertices in increasing order.
func (t *Tree) Sinks() []int {
	var s []int
	for i := range t.Verts {
		if t.Verts[i].Kind == Sink {
			s = append(s, i)
		}
	}
	return s
}

// BufferPositions returns the indices of all vertices with BufferOK set,
// in increasing order.
func (t *Tree) BufferPositions() []int {
	var s []int
	for i := range t.Verts {
		if t.Verts[i].BufferOK {
			s = append(s, i)
		}
	}
	return s
}

// NumSinks returns the number of sink vertices.
func (t *Tree) NumSinks() int {
	n := 0
	for i := range t.Verts {
		if t.Verts[i].Kind == Sink {
			n++
		}
	}
	return n
}

// NumBufferPositions returns the number of legal buffer positions.
func (t *Tree) NumBufferPositions() int {
	n := 0
	for i := range t.Verts {
		if t.Verts[i].BufferOK {
			n++
		}
	}
	return n
}

// TotalWireCap returns the sum of all edge capacitances in fF.
func (t *Tree) TotalWireCap() float64 {
	c := 0.0
	for i := range t.Verts {
		c += t.Verts[i].EdgeC
	}
	return c
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	nt := &Tree{
		Verts:     make([]Vertex, len(t.Verts)),
		children:  make([][]int, len(t.children)),
		postorder: make([]int, len(t.postorder)),
	}
	copy(nt.Verts, t.Verts)
	copy(nt.postorder, t.postorder)
	for i, cs := range t.children {
		if cs != nil {
			nt.children[i] = append([]int(nil), cs...)
		}
	}
	for i := range nt.Verts {
		if a := nt.Verts[i].Allowed; a != nil {
			nt.Verts[i].Allowed = append([]int(nil), a...)
		}
	}
	return nt
}

// Builder incrementally constructs a Tree. Vertices must be added
// top-down: the parent of every vertex must already exist.
type Builder struct {
	verts []Vertex
	err   error
}

// NewBuilder returns a Builder whose vertex 0 is the source.
func NewBuilder() *Builder {
	return &Builder{verts: []Vertex{{Kind: Source, Parent: -1, Name: "src"}}}
}

func (b *Builder) setErr(err error) int {
	if b.err == nil {
		b.err = err
	}
	return -1
}

func (b *Builder) add(v Vertex) int {
	if b.err != nil {
		return -1
	}
	if v.Parent < 0 || v.Parent >= len(b.verts) {
		return b.setErr(fmt.Errorf("tree: vertex %d: parent %d does not exist", len(b.verts), v.Parent))
	}
	if b.verts[v.Parent].Kind == Sink {
		return b.setErr(fmt.Errorf("tree: vertex %d: parent %d is a sink", len(b.verts), v.Parent))
	}
	if v.EdgeR < 0 || v.EdgeC < 0 {
		return b.setErr(fmt.Errorf("tree: vertex %d: negative edge RC (%g, %g)", len(b.verts), v.EdgeR, v.EdgeC))
	}
	b.verts = append(b.verts, v)
	return len(b.verts) - 1
}

// AddSink adds a sink below parent with the given edge RC, load capacitance
// and RAT, returning its index.
func (b *Builder) AddSink(parent int, edgeR, edgeC, cap, rat float64) int {
	if cap < 0 {
		return b.setErr(fmt.Errorf("tree: sink below %d: negative capacitance %g", parent, cap))
	}
	return b.add(Vertex{Kind: Sink, Parent: parent, EdgeR: edgeR, EdgeC: edgeC, Cap: cap, RAT: rat})
}

// AddSinkPol is AddSink with an explicit polarity requirement.
func (b *Builder) AddSinkPol(parent int, edgeR, edgeC, cap, rat float64, pol Polarity) int {
	id := b.AddSink(parent, edgeR, edgeC, cap, rat)
	if id >= 0 {
		b.verts[id].Pol = pol
	}
	return id
}

// AddInternal adds a plain internal vertex (branch point) below parent.
func (b *Builder) AddInternal(parent int, edgeR, edgeC float64) int {
	return b.add(Vertex{Kind: Internal, Parent: parent, EdgeR: edgeR, EdgeC: edgeC})
}

// AddBufferPos adds an internal vertex that is a legal buffer position.
func (b *Builder) AddBufferPos(parent int, edgeR, edgeC float64) int {
	return b.add(Vertex{Kind: Internal, Parent: parent, EdgeR: edgeR, EdgeC: edgeC, BufferOK: true})
}

// AddBufferPosRestricted adds a buffer position allowing only the given
// library type indices.
func (b *Builder) AddBufferPosRestricted(parent int, edgeR, edgeC float64, allowed []int) int {
	id := b.AddBufferPos(parent, edgeR, edgeC)
	if id >= 0 {
		b.verts[id].Allowed = append([]int(nil), allowed...)
	}
	return id
}

// SetName labels vertex v (for netlist round-trips and diagnostics).
func (b *Builder) SetName(v int, name string) {
	if b.err == nil && v >= 0 && v < len(b.verts) {
		b.verts[v].Name = name
	}
}

// Build finalizes the tree, validating its structure.
func (b *Builder) Build() (*Tree, error) {
	if b.err != nil {
		return nil, b.err
	}
	t := &Tree{Verts: b.verts}
	if err := t.finalize(); err != nil {
		return nil, err
	}
	b.verts = nil // builder is spent; prevent aliasing
	return t, nil
}

// MustBuild is Build that panics on error, for tests and generators that
// construct trees from trusted inputs.
func (b *Builder) MustBuild() *Tree {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// finalize derives adjacency, computes post order, and validates.
func (t *Tree) finalize() error {
	n := len(t.Verts)
	if n == 0 || t.Verts[0].Kind != Source || t.Verts[0].Parent != -1 {
		return errors.New("tree: vertex 0 must be the source with parent -1")
	}
	t.children = make([][]int, n)
	for i := 1; i < n; i++ {
		p := t.Verts[i].Parent
		if p < 0 || p >= n {
			return fmt.Errorf("tree: vertex %d: parent %d out of range", i, p)
		}
		if p >= i {
			return fmt.Errorf("tree: vertex %d: parent %d not topologically earlier", i, p)
		}
		t.children[p] = append(t.children[p], i)
	}
	for i := 0; i < n; i++ {
		v := &t.Verts[i]
		switch v.Kind {
		case Source:
			if i != 0 {
				return fmt.Errorf("tree: vertex %d: extra source", i)
			}
		case Sink:
			if len(t.children[i]) != 0 {
				return fmt.Errorf("tree: sink %d has children", i)
			}
			if v.Cap < 0 {
				return fmt.Errorf("tree: sink %d: negative capacitance %g", i, v.Cap)
			}
			if v.BufferOK {
				return fmt.Errorf("tree: sink %d cannot be a buffer position", i)
			}
		case Internal:
			if len(t.children[i]) == 0 {
				return fmt.Errorf("tree: internal vertex %d is a leaf (leaves must be sinks)", i)
			}
		default:
			return fmt.Errorf("tree: vertex %d: unknown kind %d", i, v.Kind)
		}
		if v.EdgeR < 0 || v.EdgeC < 0 {
			return fmt.Errorf("tree: vertex %d: negative edge RC (%g, %g)", i, v.EdgeR, v.EdgeC)
		}
	}
	if len(t.children[0]) == 0 {
		return errors.New("tree: source has no children")
	}
	t.computePostOrder()
	return nil
}

// computePostOrder fills t.postorder iteratively (explicit stack) so deep
// chains cannot overflow the goroutine stack.
func (t *Tree) computePostOrder() {
	n := len(t.Verts)
	t.postorder = make([]int, 0, n)
	type frame struct {
		v    int
		next int // next child index to visit
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{v: 0})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		cs := t.children[f.v]
		if f.next < len(cs) {
			c := cs[f.next]
			f.next++
			stack = append(stack, frame{v: c})
			continue
		}
		t.postorder = append(t.postorder, f.v)
		stack = stack[:len(stack)-1]
	}
}

// Validate re-checks all structural invariants. Freshly built trees always
// pass; it exists so generators, parsers and property tests can assert
// integrity after transformation.
func (t *Tree) Validate() error {
	c := &Tree{Verts: t.Verts}
	return c.finalize()
}

// Depth returns the maximum number of edges on any root-to-leaf path.
func (t *Tree) Depth() int {
	depth := make([]int, len(t.Verts))
	max := 0
	// Parent indices are topologically ordered, so a forward scan works.
	for i := 1; i < len(t.Verts); i++ {
		depth[i] = depth[t.Verts[i].Parent] + 1
		if depth[i] > max {
			max = depth[i]
		}
	}
	return max
}
