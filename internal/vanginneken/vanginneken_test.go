package vanginneken

import (
	"strings"
	"testing"

	"bufferkit/internal/bruteforce"
	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/netgen"
	"bufferkit/internal/testutil"
	"bufferkit/internal/tree"
)

var buf = library.Buffer{Name: "buf", R: 0.5, Cin: 1, K: 5}

func TestTwoPinAnalytic(t *testing.T) {
	// src --(1,2)-- v --(2,4)-- sink(3, RAT 100)
	b := tree.NewBuilder()
	v := b.AddBufferPos(0, 1, 2)
	b.AddSink(v, 2, 4, 3, 100)
	tr := b.MustBuild()

	res, err := Insert(tr, buf, delay.Driver{})
	if err != nil {
		t.Fatal(err)
	}
	// Unbuffered root Q = 100 − 2*(4/2+3) − 1*(2/2+7) = 100 − 10 − 8 = 82.
	// Buffered at v: Q(v) = 90 − 5 − 0.5*7 = 81.5 ; root: 81.5 − 1*(2/2+1) = 79.5.
	// Unbuffered wins without a driver.
	if res.Slack != 82 {
		t.Fatalf("Slack = %g, want 82", res.Slack)
	}
	if res.Placement.Count() != 0 {
		t.Fatalf("expected no buffer, got %v", res.Placement)
	}
	testutil.CheckPlacement(t, tr, library.Library{buf}, res.Placement, delay.Driver{}, res.Slack, "vg analytic")
}

func TestTwoPinDriverFlipsDecision(t *testing.T) {
	// Same net; a resistive driver makes the low-C buffered candidate win:
	// unbuffered 82 − 2·9 = 64 ; buffered 79.5 − 2·3 = 73.5.
	b := tree.NewBuilder()
	v := b.AddBufferPos(0, 1, 2)
	b.AddSink(v, 2, 4, 3, 100)
	tr := b.MustBuild()

	drv := delay.Driver{R: 2}
	res, err := Insert(tr, buf, drv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slack != 73.5 {
		t.Fatalf("Slack = %g, want 73.5", res.Slack)
	}
	if res.Placement[v] != 0 {
		t.Fatalf("expected buffer at %d, got %v", v, res.Placement)
	}
	testutil.CheckPlacement(t, tr, library.Library{buf}, res.Placement, drv, res.Slack, "vg driver")
}

func TestMatchesBruteForceOnRandomSmallNets(t *testing.T) {
	lib := library.Library{buf}
	for seed := int64(0); seed < 60; seed++ {
		tr := netgen.RandomSmall(seed, 6, 0)
		drv := delay.Driver{R: 0.3, K: 2}
		want, err := bruteforce.Best(tr, lib, drv)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Insert(tr, buf, drv)
		if err != nil {
			t.Fatal(err)
		}
		if !testutil.AlmostEqual(got.Slack, want.Slack) {
			t.Fatalf("seed %d: vg slack %.12g, brute force %.12g", seed, got.Slack, want.Slack)
		}
		testutil.CheckPlacement(t, tr, lib, got.Placement, drv, got.Slack, "vg random")
	}
}

func TestListLengthBound(t *testing.T) {
	// Classic theory: with one buffer type the candidate list never exceeds
	// n+1 where n is the number of buffer positions.
	tr := netgen.TwoPin(8000, 40, 10, 1000, netgen.PaperWire())
	res, err := Insert(tr, buf, delay.Driver{R: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxListLen > tr.NumBufferPositions()+1 {
		t.Fatalf("MaxListLen = %d > n+1 = %d", res.MaxListLen, tr.NumBufferPositions()+1)
	}
	if res.Candidates < 1 {
		t.Fatal("no candidates at root")
	}
}

func TestLongLineWantsManyBuffers(t *testing.T) {
	tr := netgen.TwoPin(20000, 30, 10, 0, netgen.PaperWire())
	drv := delay.Driver{R: 0.5}
	res, err := Insert(tr, buf, drv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.Count() < 2 {
		t.Fatalf("expected several buffers on a 2 cm line, got %d", res.Placement.Count())
	}
	unbuf, err := delay.Evaluate(tr, library.Library{buf}, delay.NewPlacement(tr.Len()), drv)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Slack > unbuf.Slack) {
		t.Fatalf("buffering did not improve slack: %g vs %g", res.Slack, unbuf.Slack)
	}
	testutil.CheckPlacement(t, tr, library.Library{buf}, res.Placement, drv, res.Slack, "vg long line")
}

func TestRejectsInverter(t *testing.T) {
	tr := netgen.TwoPin(100, 1, 1, 0, netgen.PaperWire())
	inv := buf
	inv.Inverting = true
	if _, err := Insert(tr, inv, delay.Driver{}); err == nil || !strings.Contains(err.Error(), "inverter") {
		t.Fatalf("err = %v", err)
	}
}

func TestRejectsNegativeSink(t *testing.T) {
	b := tree.NewBuilder()
	v := b.AddBufferPos(0, 1, 1)
	b.AddSinkPol(v, 1, 1, 2, 100, tree.Negative)
	tr := b.MustBuild()
	if _, err := Insert(tr, buf, delay.Driver{}); err == nil || !strings.Contains(err.Error(), "polarity") {
		t.Fatalf("err = %v", err)
	}
}

func TestRejectsRestrictedAwayType(t *testing.T) {
	b := tree.NewBuilder()
	v := b.AddBufferPosRestricted(0, 1, 1, []int{3})
	b.AddSink(v, 1, 1, 2, 100)
	tr := b.MustBuild()
	if _, err := Insert(tr, buf, delay.Driver{}); err == nil || !strings.Contains(err.Error(), "restricts away") {
		t.Fatalf("err = %v", err)
	}
}

func TestRejectsInvalidBuffer(t *testing.T) {
	tr := netgen.TwoPin(100, 1, 1, 0, netgen.PaperWire())
	bad := library.Buffer{R: -1, Cin: 1}
	if _, err := Insert(tr, bad, delay.Driver{}); err == nil {
		t.Fatal("accepted invalid buffer")
	}
}
