// Package vanginneken implements the classic O(n²) optimal buffer insertion
// algorithm for a single buffer type (L.P.P.P. van Ginneken, ISCAS 1990).
//
// It is the historical baseline the paper builds on and doubles as an
// independent cross-check: it uses a plain sorted slice rather than the
// linked-list machinery in internal/candidate, so agreement between the two
// implementations on b = 1 instances is meaningful evidence of correctness.
package vanginneken

import (
	"context"

	"bufferkit/internal/candidate"
	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/solvererr"
	"bufferkit/internal/tree"
)

// Result is the outcome of a run.
type Result struct {
	// Slack is the optimal slack at the driver input, in ps.
	Slack float64
	// Placement maps vertex index to 0 (the single buffer type) or -1.
	Placement delay.Placement
	// Candidates is the final candidate count at the root.
	Candidates int
	// MaxListLen is the largest candidate list seen during the run.
	MaxListLen int
}

// cand is a slice-backed candidate.
type cand struct {
	q, c float64
	dec  candidate.DecRef
}

// Insert computes optimal buffer insertion on t with the single buffer type
// buf and driver drv.
func Insert(t *tree.Tree, buf library.Buffer, drv delay.Driver) (*Result, error) {
	return InsertContext(context.Background(), t, buf, drv)
}

// InsertContext is Insert under a context: the per-vertex loop polls ctx at
// a coarse grain and aborts with an error wrapping solvererr.ErrCanceled
// when it fires.
func InsertContext(ctx context.Context, t *tree.Tree, buf library.Buffer, drv delay.Driver) (*Result, error) {
	if err := (library.Library{buf}).Validate(); err != nil {
		return nil, err
	}
	if buf.Inverting {
		return nil, solvererr.Validation("vanginneken", "library", "single-type algorithm cannot use an inverter")
	}
	for i := range t.Verts {
		v := &t.Verts[i]
		if v.Kind == tree.Sink && v.Pol == tree.Negative {
			return nil, solvererr.Validation("vanginneken", "polarity",
				"sink requires negative polarity; library has no inverters").AtVertex(i)
		}
		if v.BufferOK && len(v.Allowed) > 0 && !allows(v.Allowed, 0) {
			return nil, solvererr.Validation("vanginneken", "allowed",
				"vertex restricts away the only buffer type").AtVertex(i)
		}
	}

	ar := candidate.NewArena()
	res := &Result{Placement: delay.NewPlacement(t.Len())}
	lists := make([][]cand, t.Len())
	for vi, v := range t.PostOrder() {
		if vi&solvererr.PollMask == 0 && ctx.Err() != nil {
			return nil, solvererr.Canceled(ctx)
		}
		vert := &t.Verts[v]
		if vert.Kind == tree.Sink {
			lists[v] = []cand{{q: vert.RAT, c: vert.Cap, dec: ar.SinkDec(v)}}
			continue
		}
		var cur []cand
		for _, c := range t.Children(v) {
			lc := lists[c]
			lists[c] = nil
			lc = addWire(lc, t.Verts[c].EdgeR, t.Verts[c].EdgeC)
			if cur == nil {
				cur = lc
			} else {
				cur = merge(ar, cur, lc)
			}
		}
		if vert.BufferOK {
			cur = addBuffer(ar, cur, buf, v)
		}
		if len(cur) > res.MaxListLen {
			res.MaxListLen = len(cur)
		}
		lists[v] = cur
	}

	root := lists[0]
	res.Candidates = len(root)
	best := root[0]
	bv := best.q - drv.R*best.c
	for _, cd := range root[1:] {
		if v := cd.q - drv.R*cd.c; v > bv {
			best, bv = cd, v
		}
	}
	res.Slack = bv - drv.K
	ar.Fill(best.dec, res.Placement)
	return res, nil
}

// addWire applies the Elmore wire transform and re-prunes dominated
// candidates (see candidate.List.AddWire for the derivation).
func addWire(l []cand, r, c float64) []cand {
	for i := range l {
		l[i].q -= r*(c/2) + r*l[i].c
		l[i].c += c
	}
	if r == 0 {
		return l
	}
	out := l[:1]
	for _, cd := range l[1:] {
		if cd.q > out[len(out)-1].q {
			out = append(out, cd)
		}
	}
	return out
}

// merge combines two branch lists: Q = min, C = sum, two-pointer sweep.
func merge(ar *candidate.Arena, a, b []cand) []cand {
	out := make([]cand, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		q := a[i].q
		if b[j].q < q {
			q = b[j].q
		}
		c := a[i].c + b[j].c
		dec := ar.MergeDec(a[i].dec, b[j].dec)
		if len(out) > 0 && out[len(out)-1].c == c {
			out[len(out)-1] = cand{q, c, dec}
		} else {
			out = append(out, cand{q, c, dec})
		}
		if a[i].q == q {
			i++
		}
		if b[j].q == q {
			j++
		}
	}
	return out
}

// addBuffer generates the single buffered candidate from the best unbuffered
// candidate (max Q − R·C, ties toward min C) and inserts it.
func addBuffer(ar *candidate.Arena, l []cand, buf library.Buffer, vertex int) []cand {
	best := 0
	bv := l[0].q - buf.R*l[0].c
	for i := 1; i < len(l); i++ {
		if v := l[i].q - buf.R*l[i].c; v > bv {
			best, bv = i, v
		}
	}
	nc := cand{
		q:   bv - buf.K,
		c:   buf.Cin,
		dec: ar.BufferDec(vertex, 0, l[best].dec),
	}
	return insertCand(l, nc)
}

// insertCand inserts nc into the (Q, C)-sorted nonredundant slice, dropping
// it if dominated and dropping existing candidates it dominates.
func insertCand(l []cand, nc cand) []cand {
	out := make([]cand, 0, len(l)+1)
	i := 0
	for ; i < len(l) && l[i].c < nc.c; i++ {
		out = append(out, l[i])
	}
	if len(out) > 0 && out[len(out)-1].q >= nc.q {
		return append(out, l[i:]...) // dominated by a cheaper candidate
	}
	if i < len(l) && l[i].c == nc.c && l[i].q >= nc.q {
		return append(out, l[i:]...) // dominated by an equal-C candidate
	}
	out = append(out, nc)
	for ; i < len(l) && l[i].q <= nc.q; i++ {
		// skip candidates the new one dominates
	}
	return append(out, l[i:]...)
}

func allows(allowed []int, t int) bool {
	for _, a := range allowed {
		if a == t {
			return true
		}
	}
	return false
}
