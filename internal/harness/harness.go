// Package harness provides the measurement utilities the experiment
// binaries and benchmarks share: repeated wall-clock timing, series
// normalization (the paper's figures plot normalized runtime), and plain
// text/CSV table rendering.
package harness

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Time runs f once and returns the elapsed wall-clock seconds.
func Time(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// TimeBest runs f reps times and returns the fastest wall-clock seconds —
// the conventional noise-resistant estimate for deterministic workloads.
// reps < 1 is treated as 1.
func TimeBest(reps int, f func()) float64 {
	best := 0.0
	for i := 0; i < reps || i < 1; i++ {
		if t := Time(f); i == 0 || t < best {
			best = t
		}
	}
	return best
}

// Normalize divides every element by the first, reproducing the paper's
// "normalized running time" axes. An empty or zero-leading series is
// returned unchanged.
func Normalize(xs []float64) []float64 {
	if len(xs) == 0 || xs[0] == 0 {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / xs[0]
	}
	return out
}

// Table accumulates rows and renders them column-aligned or as CSV.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// Add appends a row; cells beyond the header count are rejected.
func (t *Table) Add(cells ...string) {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("harness: row has %d cells, table has %d columns", len(cells), len(t.headers)))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Addf appends a row of formatted values: strings pass through, float64
// render with %.4g, ints with %d.
func (t *Table) Addf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			out[i] = v
		case float64:
			out[i] = fmt.Sprintf("%.4g", v)
		case int:
			out[i] = fmt.Sprintf("%d", v)
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	t.Add(out...)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	width := make([]int, len(t.headers))
	for i, h := range t.headers {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", width[i], c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.headers); err != nil {
		return err
	}
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", width[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
