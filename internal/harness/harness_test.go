package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestTimeMeasuresElapsed(t *testing.T) {
	s := Time(func() { time.Sleep(20 * time.Millisecond) })
	if s < 0.015 || s > 2 {
		t.Fatalf("Time = %g s, expected ≈ 0.02", s)
	}
}

func TestTimeBestTakesMinimum(t *testing.T) {
	n := 0
	s := TimeBest(3, func() {
		n++
		if n == 1 {
			time.Sleep(30 * time.Millisecond)
		}
	})
	if n != 3 {
		t.Fatalf("ran %d times, want 3", n)
	}
	if s > 0.02 {
		t.Fatalf("TimeBest = %g, should be far below the slow first run", s)
	}
	if TimeBest(0, func() { n++ }); n != 4 {
		t.Fatal("reps<1 must still run once")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 10})
	want := []float64{1, 2, 5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Normalize = %v, want %v", got, want)
		}
	}
	if out := Normalize(nil); len(out) != 0 {
		t.Fatal("Normalize(nil) not empty")
	}
	if out := Normalize([]float64{0, 5}); out[0] != 0 || out[1] != 5 {
		t.Fatalf("zero-leading series must pass through, got %v", out)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("m", "algo", "time")
	tab.Addf(1944, "lillis", 1.25)
	tab.Addf(1944, "new", 0.111)
	var b bytes.Buffer
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+rule+2 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "m") || !strings.Contains(lines[0], "algo") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], "lillis") || !strings.Contains(lines[3], "0.111") {
		t.Fatalf("rows wrong:\n%s", out)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("a", "b")
	tab.Add("x,y", `say "hi"`)
	var b bytes.Buffer
	if err := tab.CSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestTableRejectsWideRows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable("only").Add("a", "b")
}

func TestTableShortRowsPad(t *testing.T) {
	tab := NewTable("a", "b")
	tab.Add("x")
	var b bytes.Buffer
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "x") {
		t.Fatal("short row lost")
	}
}
