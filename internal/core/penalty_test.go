package core

import (
	"errors"
	"math/rand"
	"testing"

	"bufferkit/internal/delay"
	"bufferkit/internal/netgen"
	"bufferkit/internal/solvererr"
	"bufferkit/internal/tree"
)

// penaltyChain builds a 2-pin chain with k buffer positions.
func penaltyChain(k int) *tree.Tree {
	b := tree.NewBuilder()
	prev := 0
	for i := 0; i < k; i++ {
		prev = b.AddBufferPos(prev, 0.3, 40)
	}
	b.AddSink(prev, 0.2, 30, 12, 800)
	return b.MustBuild()
}

// TestSitePenaltyExactOnTwoPin checks the priced DP against exhaustive
// enumeration on 2-pin chains: with a single sink the penalized objective
// max over placements of (slack − Σ price of bought positions) is exactly
// what the DP computes.
func TestSitePenaltyExactOnTwoPin(t *testing.T) {
	lib := smallLib()
	drv := delay.Driver{R: 0.4, K: 3}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := penaltyChain(4)
		pen := make([]float64, tr.Len())
		var positions []int
		for v := range tr.Verts {
			if tr.Verts[v].BufferOK {
				positions = append(positions, v)
				pen[v] = rng.Float64() * 40
			}
		}

		// Exhaustive: every assignment of {none, type 0..b-1} to each position.
		best := -1e300
		assign := make([]int, len(positions))
		var walk func(i int)
		walk = func(i int) {
			if i == len(positions) {
				p := delay.NewPlacement(tr.Len())
				cost := 0.0
				for j, v := range positions {
					if assign[j] >= 0 {
						p[v] = assign[j]
						cost += pen[v]
					}
				}
				res, err := delay.Evaluate(tr, lib, p, drv)
				if err != nil {
					t.Fatal(err)
				}
				if s := res.Slack - cost; s > best {
					best = s
				}
				return
			}
			for a := -1; a < len(lib); a++ {
				assign[i] = a
				walk(i + 1)
			}
		}
		walk(0)

		got, err := Insert(tr, lib, Options{Driver: drv, SitePenalty: pen, CheckInvariants: true})
		if err != nil {
			t.Fatal(err)
		}
		if diff := got.Slack - best; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("seed %d: priced DP slack %.12g, exhaustive %.12g", seed, got.Slack, best)
		}
	}
}

// TestSitePenaltyNilMatchesZero asserts that a nil penalty vector and an
// all-zero one produce bit-identical results — the contract that lets the
// chip allocator skip the penalty on unpriced rounds.
func TestSitePenaltyNilMatchesZero(t *testing.T) {
	lib := smallLib()
	drv := delay.Driver{R: 0.5, K: 2}
	for _, backend := range []Backend{BackendList, BackendSoA} {
		for seed := int64(0); seed < 25; seed++ {
			tr := netgen.RandomSmall(seed, 6, 0)
			plain, err := Insert(tr, lib, Options{Driver: drv, Backend: backend})
			if err != nil {
				t.Fatal(err)
			}
			zero, err := Insert(tr, lib, Options{Driver: drv, Backend: backend, SitePenalty: make([]float64, tr.Len())})
			if err != nil {
				t.Fatal(err)
			}
			if plain.Slack != zero.Slack {
				t.Fatalf("backend %v seed %d: nil %.17g != zero %.17g", backend, seed, plain.Slack, zero.Slack)
			}
			for v := range plain.Placement {
				if plain.Placement[v] != zero.Placement[v] {
					t.Fatalf("backend %v seed %d: placement differs at %d", backend, seed, v)
				}
			}
		}
	}
}

// TestSitePenaltyBackendsAgree asserts both candidate backends produce
// bit-identical priced results — the chip allocator's determinism depends
// on it.
func TestSitePenaltyBackendsAgree(t *testing.T) {
	lib := smallLib()
	drv := delay.Driver{R: 0.4}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		tr := netgen.RandomSmall(seed, 6, 0)
		pen := make([]float64, tr.Len())
		for v := range pen {
			if tr.Verts[v].BufferOK {
				pen[v] = rng.Float64() * 25
			}
		}
		list, err := Insert(tr, lib, Options{Driver: drv, Backend: BackendList, SitePenalty: pen})
		if err != nil {
			t.Fatal(err)
		}
		soa, err := Insert(tr, lib, Options{Driver: drv, Backend: BackendSoA, SitePenalty: pen})
		if err != nil {
			t.Fatal(err)
		}
		if list.Slack != soa.Slack {
			t.Fatalf("seed %d: list %.17g != soa %.17g", seed, list.Slack, soa.Slack)
		}
		for v := range list.Placement {
			if list.Placement[v] != soa.Placement[v] {
				t.Fatalf("seed %d: placement differs at %d", seed, v)
			}
		}
	}
}

// TestSitePenaltyShortVectorRejected asserts Reset validates the penalty
// vector length.
func TestSitePenaltyShortVectorRejected(t *testing.T) {
	tr := penaltyChain(3)
	e := NewEngine()
	err := e.Reset(tr, smallLib(), Options{SitePenalty: make([]float64, 2)})
	var verr *solvererr.ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("want ValidationError, got %v", err)
	}
}
