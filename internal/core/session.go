package core

import (
	"context"
	"math"

	"bufferkit/internal/library"
	"bufferkit/internal/solvererr"
	"bufferkit/internal/tree"
)

// Delta is one typed ECO perturbation a Session can absorb. Implementations
// validate fully before mutating anything, so Session.Patch applies a batch
// atomically: an invalid delta rejects the whole batch and leaves the
// session untouched.
type Delta interface {
	validate(s *Session) error
	apply(s *Session)
}

// SinkDelta sets a sink's required arrival time and load capacitance
// (absolute values, not increments).
type SinkDelta struct {
	// Vertex indexes the sink in the session's tree.
	Vertex int
	// RAT is the new required arrival time in ps.
	RAT float64
	// Cap is the new load capacitance in fF.
	Cap float64
}

// EdgeDelta sets the resistance and capacitance of the wire from Vertex's
// parent to Vertex (absolute values).
type EdgeDelta struct {
	// Vertex is the downstream endpoint of the edge (any non-root vertex).
	Vertex int
	// R is the new wire resistance in kΩ; C the new capacitance in fF.
	R, C float64
}

// BufferDelta sets whether a vertex is a legal buffer position and,
// optionally, restricts the library types allowed there (nil Allowed =
// every type).
type BufferDelta struct {
	// Vertex indexes a non-sink vertex in the session's tree.
	Vertex int
	// OK is the new BufferOK flag.
	OK bool
	// Allowed is the new per-vertex type restriction (copied; nil allows
	// every library type).
	Allowed []int
}

// PenaltyDelta sets the per-vertex site-penalty vector — the chip
// allocator's channel for Lagrangian price updates. Only vertices whose
// penalty actually changes (and that are live buffer sites) dirty the
// session, so a round that re-prices a handful of sites re-solves only
// those sites' root paths.
type PenaltyDelta struct {
	// Penalty is the full penalty vector, length at least the tree size.
	// Values are copied into the session's own vector.
	Penalty []float64
}

// SessionStats instrument a session's resolve history.
type SessionStats struct {
	// Resolves counts Resolve calls (including failed ones).
	Resolves int
	// FullRebuilds counts resolves that recomputed every vertex — the
	// first resolve, resolves after an error, and decision-slab compactions.
	FullRebuilds int
	// LastRecomputed is the number of vertices the last resolve recomputed.
	LastRecomputed int
}

// Session is an incremental ECO re-solver for one net: it owns a private
// clone of the tree, a dedicated engine whose arena retains every vertex's
// candidate frontier as a checkpoint, and a dirty-bit vector marking the
// vertices whose checkpoints a patch invalidated. Patch applies typed
// deltas to the clone and marks the perturbed vertex-to-root paths dirty;
// Resolve recomputes exactly the dirty vertices bottom-up, reusing
// checkpointed sibling frontiers at every merge, and is bit-identical —
// slack, placement, cost — to a cold Engine run on the patched tree.
//
// Delta resolves append decision records without reclaiming superseded
// ones, so when the arena's decision count outgrows a multiple of the
// post-rebuild baseline the session schedules a full rebuild (arena rewind
// plus from-scratch resolve), bounding memory at a constant factor of a
// cold run. Steady-state patch+resolve cycles allocate nothing.
//
// A Session is not safe for concurrent use.
type Session struct {
	t   *tree.Tree
	lib library.Library
	opt Options
	eng *Engine

	pen    []float64
	dirty  []bool
	full   bool
	maxDec int

	closed bool
	stats  SessionStats
}

// NewSession validates the instance and opens a session on a private clone
// of t. opt.SitePenalty, when non-nil, seeds the session's own penalty
// vector (later updated through PenaltyDelta); opt.Backend selects the
// candidate representation exactly as for Engine.Reset.
func NewSession(t *tree.Tree, lib library.Library, opt Options) (*Session, error) {
	s := &Session{
		t:   t.Clone(),
		lib: lib,
		eng: NewEngine(),
	}
	s.pen = make([]float64, s.t.Len())
	if opt.SitePenalty != nil {
		if len(opt.SitePenalty) < s.t.Len() {
			return nil, solvererr.Validation("core", "site_penalty",
				"penalty vector length %d < tree size %d", len(opt.SitePenalty), s.t.Len())
		}
		copy(s.pen, opt.SitePenalty)
	}
	opt.SitePenalty = s.pen // session-owned; all-zero is bit-identical to nil
	s.opt = opt
	if err := s.eng.Reset(s.t, lib, opt); err != nil {
		return nil, err
	}
	s.dirty = make([]bool, s.t.Len())
	s.full = true
	return s, nil
}

// Tree exposes the session's private tree clone — the patched instance a
// cold run must use to reproduce Resolve bit for bit. Callers must treat it
// as read-only; all mutation goes through Patch.
func (s *Session) Tree() *tree.Tree { return s.t }

// Backend returns the resolved candidate-list backend the session runs on.
func (s *Session) Backend() Backend { return s.eng.Backend() }

// Penalty exposes the session's current site-penalty vector — together with
// Tree, the full instance a cold run must use to reproduce Resolve bit for
// bit. Callers must treat it as read-only; updates go through PenaltyDelta.
func (s *Session) Penalty() []float64 { return s.pen }

// Stats returns the session's resolve instrumentation.
func (s *Session) Stats() SessionStats { return s.stats }

// Patch applies a batch of deltas atomically: every delta is validated
// against the current tree before any is applied, so an invalid delta
// returns a *solvererr.ValidationError and leaves the session unchanged
// and usable.
func (s *Session) Patch(deltas ...Delta) error {
	if s.closed {
		return solvererr.Validation("core", "session", "session is closed")
	}
	for _, d := range deltas {
		if err := d.validate(s); err != nil {
			return err
		}
	}
	for _, d := range deltas {
		d.apply(s)
	}
	return nil
}

// PatchSink is Patch(SinkDelta{...}) without the interface boxing — the
// synthesis-loop hot path (perturb one sink, re-solve) stays allocation-
// free end to end.
func (s *Session) PatchSink(vertex int, rat, cap float64) error {
	if s.closed {
		return solvererr.Validation("core", "session", "session is closed")
	}
	d := SinkDelta{Vertex: vertex, RAT: rat, Cap: cap}
	if err := d.validate(s); err != nil {
		return err
	}
	d.apply(s)
	return nil
}

// PatchBufferOK flips one vertex's buffer-position flag, preserving its
// Allowed restriction — the chip repair pass's site-masking primitive.
// Like PatchSink, it avoids the Delta interface boxing.
func (s *Session) PatchBufferOK(vertex int, ok bool) error {
	if s.closed {
		return solvererr.Validation("core", "session", "session is closed")
	}
	if vertex < 0 || vertex >= s.t.Len() {
		return solvererr.Validation("core", "delta", "buffer delta vertex %d out of range [0, %d)", vertex, s.t.Len())
	}
	v := &s.t.Verts[vertex]
	if v.Kind == tree.Sink {
		return solvererr.Validation("core", "delta", "buffer delta targets a sink").AtVertex(vertex)
	}
	if v.BufferOK == ok {
		return nil
	}
	v.BufferOK = ok
	s.markDirty(vertex)
	return nil
}

// PatchPenalty is Patch(PenaltyDelta{...}) without the interface boxing —
// the chip allocator's per-round price-update path stays allocation-free.
func (s *Session) PatchPenalty(penalty []float64) error {
	if s.closed {
		return solvererr.Validation("core", "session", "session is closed")
	}
	d := PenaltyDelta{Penalty: penalty}
	if err := d.validate(s); err != nil {
		return err
	}
	d.apply(s)
	return nil
}

// Resolve re-solves the patched instance into res, recomputing only the
// dirty vertex-to-root paths (everything on the first call, after a failed
// resolve, or when the decision slab needs compacting). The outcome is
// bit-identical to a cold Engine run on the patched tree; errors are the
// engine's (ErrInfeasible, ErrCanceled, invariant violations). After an
// error the session stays usable — the next Resolve runs full.
func (s *Session) Resolve(ctx context.Context, res *Result) error {
	if s.closed {
		return solvererr.Validation("core", "session", "session is closed")
	}
	full := s.full || s.eng.Decisions() > s.maxDec
	s.full = true // stays poisoned unless this resolve succeeds
	s.stats.Resolves++
	n, err := s.eng.ResolveRetained(ctx, res, s.dirty, full)
	s.stats.LastRecomputed = n
	if err != nil {
		return err
	}
	s.full = false
	clear(s.dirty)
	if full {
		s.stats.FullRebuilds++
		baseline := s.eng.Decisions()
		s.maxDec = 4*baseline + 4096
	}
	return nil
}

// Close releases the session's engine state. Further Patch/Resolve calls
// fail.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.eng.Release()
}

// markDirty marks v and its ancestors dirty, stopping at the first vertex
// already marked: Patch only ever dirties whole vertex-to-root paths, so a
// dirty vertex implies a dirty parent (the closure ResolveRetained's skip
// logic relies on).
func (s *Session) markDirty(v int) {
	for v >= 0 && !s.dirty[v] {
		s.dirty[v] = true
		v = s.t.Verts[v].Parent
	}
}

func (d SinkDelta) validate(s *Session) error {
	if d.Vertex < 0 || d.Vertex >= s.t.Len() {
		return solvererr.Validation("core", "delta", "sink delta vertex %d out of range [0, %d)", d.Vertex, s.t.Len())
	}
	if s.t.Verts[d.Vertex].Kind != tree.Sink {
		return solvererr.Validation("core", "delta", "sink delta targets non-sink vertex").AtVertex(d.Vertex)
	}
	if math.IsNaN(d.RAT) || math.IsInf(d.RAT, 0) {
		return solvererr.Validation("core", "delta", "sink delta RAT must be finite").AtVertex(d.Vertex)
	}
	if !(d.Cap >= 0) || math.IsInf(d.Cap, 0) {
		return solvererr.Validation("core", "delta", "sink delta capacitance must be finite and non-negative").AtVertex(d.Vertex)
	}
	return nil
}

func (d SinkDelta) apply(s *Session) {
	v := &s.t.Verts[d.Vertex]
	if v.RAT == d.RAT && v.Cap == d.Cap {
		return
	}
	v.RAT, v.Cap = d.RAT, d.Cap
	s.markDirty(d.Vertex)
}

func (d EdgeDelta) validate(s *Session) error {
	if d.Vertex < 1 || d.Vertex >= s.t.Len() {
		return solvererr.Validation("core", "delta", "edge delta vertex %d out of range [1, %d)", d.Vertex, s.t.Len())
	}
	if !(d.R >= 0) || math.IsInf(d.R, 0) || !(d.C >= 0) || math.IsInf(d.C, 0) {
		return solvererr.Validation("core", "delta", "edge delta R and C must be finite and non-negative").AtVertex(d.Vertex)
	}
	return nil
}

func (d EdgeDelta) apply(s *Session) {
	v := &s.t.Verts[d.Vertex]
	if v.EdgeR == d.R && v.EdgeC == d.C {
		return
	}
	v.EdgeR, v.EdgeC = d.R, d.C
	// The wire is applied when the *parent* wires-and-merges this child's
	// checkpoint, so the child's own frontier is untouched.
	s.markDirty(v.Parent)
}

func (d BufferDelta) validate(s *Session) error {
	if d.Vertex < 0 || d.Vertex >= s.t.Len() {
		return solvererr.Validation("core", "delta", "buffer delta vertex %d out of range [0, %d)", d.Vertex, s.t.Len())
	}
	if s.t.Verts[d.Vertex].Kind == tree.Sink {
		return solvererr.Validation("core", "delta", "buffer delta targets a sink").AtVertex(d.Vertex)
	}
	for _, ti := range d.Allowed {
		if ti < 0 || ti >= len(s.lib) {
			return solvererr.Validation("core", "delta", "buffer delta allowed type %d out of range [0, %d)", ti, len(s.lib)).AtVertex(d.Vertex)
		}
	}
	return nil
}

func (d BufferDelta) apply(s *Session) {
	v := &s.t.Verts[d.Vertex]
	same := v.BufferOK == d.OK && len(v.Allowed) == len(d.Allowed)
	if same {
		for i := range d.Allowed {
			if v.Allowed[i] != d.Allowed[i] {
				same = false
				break
			}
		}
	}
	if same {
		return
	}
	v.BufferOK = d.OK
	if d.Allowed == nil {
		v.Allowed = nil
	} else {
		v.Allowed = append(v.Allowed[:0:0], d.Allowed...)
	}
	s.markDirty(d.Vertex)
}

func (d PenaltyDelta) validate(s *Session) error {
	if len(d.Penalty) < s.t.Len() {
		return solvererr.Validation("core", "delta", "penalty vector length %d < tree size %d", len(d.Penalty), s.t.Len())
	}
	return nil
}

func (d PenaltyDelta) apply(s *Session) {
	for v := 0; v < s.t.Len(); v++ {
		if s.pen[v] == d.Penalty[v] {
			continue
		}
		s.pen[v] = d.Penalty[v]
		// The penalty is read only where a buffer may be placed; elsewhere
		// the update is recorded but dirties nothing (a later BufferDelta
		// enabling the site dirties the path itself).
		if s.t.Verts[v].BufferOK {
			s.markDirty(v)
		}
	}
}
