package core

import (
	"context"
	"errors"
	"testing"

	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/netgen"
	"bufferkit/internal/solvererr"
	"bufferkit/internal/tree"
)

// infeasibleTree builds a net whose run dies mid-tree: a negative-polarity
// sink with no buffer position anywhere, so the polarity merge finds both
// parities empty long before the root.
func infeasibleTree() *tree.Tree {
	b := tree.NewBuilder()
	p := b.AddInternal(0, 0.1, 2)
	b.AddSinkPol(p, 0.1, 2, 3, 900, tree.Negative)
	b.AddSink(p, 0.1, 2, 3, 900)
	return b.MustBuild()
}

// TestEngineWarmAfterErrorPaths: an error-path exit from runContext —
// mid-tree infeasibility or a fired context — must leave a pooled engine as
// reusable as a clean run does: the next Reset+Run is bit-identical to a
// fresh engine's, and the warm steady state stays at zero allocations.
func TestEngineWarmAfterErrorPaths(t *testing.T) {
	lib := library.GenerateWithInverters(6)
	tr := netgen.TwoPin(8000, 40, 12, 1000, netgen.PaperWire())
	opt := func(b Backend) Options { return Options{Driver: delay.Driver{R: 0.25}, Backend: b} }
	bad := infeasibleTree()

	for _, backend := range []Backend{BackendList, BackendSoA} {
		// Ground truth from a throwaway fresh engine.
		fresh := NewEngine()
		if err := fresh.Reset(tr, lib, opt(backend)); err != nil {
			t.Fatal(err)
		}
		want := &Result{}
		if err := fresh.Run(want); err != nil {
			t.Fatal(err)
		}

		eng := NewEngine()
		res := &Result{}

		// Error path 1: mid-tree infeasibility.
		if err := eng.Reset(bad, lib, opt(backend)); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(res); !errors.Is(err, solvererr.ErrInfeasible) {
			t.Fatalf("backend=%v: infeasible net returned %v, want ErrInfeasible", backend, err)
		}

		// Error path 2: context already fired when the run starts.
		canceled, cancel := context.WithCancel(context.Background())
		cancel()
		if err := eng.Reset(tr, lib, opt(backend)); err != nil {
			t.Fatal(err)
		}
		if err := eng.RunContext(canceled, res); !errors.Is(err, solvererr.ErrCanceled) {
			t.Fatalf("backend=%v: canceled run returned %v, want ErrCanceled", backend, err)
		}

		// The engine must now behave exactly like a fresh one...
		if err := eng.Run(res); err != nil {
			t.Fatal(err)
		}
		if res.Slack != want.Slack || res.Candidates != want.Candidates ||
			len(res.Placement) != len(want.Placement) {
			t.Fatalf("backend=%v: post-error run diverged: slack %g != %g, %d candidates != %d",
				backend, res.Slack, want.Slack, res.Candidates, want.Candidates)
		}
		for i := range res.Placement {
			if res.Placement[i] != want.Placement[i] {
				t.Fatalf("backend=%v: placement[%d] = %+v != %+v", backend, i, res.Placement[i], want.Placement[i])
			}
		}

		// ...including the zero-allocation warm steady state. One more error
		// exit immediately before the measurement, so the measured runs are
		// the first ones after an aborted run (the error itself may allocate
		// its wrapping; the engine afterwards must not).
		if err := eng.RunContext(canceled, res); !errors.Is(err, solvererr.ErrCanceled) {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if err := eng.Run(res); err != nil {
				t.Fatal(err)
			}
			if res.Slack != want.Slack {
				t.Fatalf("warm run diverged: %g != %g", res.Slack, want.Slack)
			}
		})
		if allocs > 0 {
			t.Fatalf("backend=%v: warm run after error exits allocates %.1f/op, want 0", backend, allocs)
		}
	}
}
