package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/netgen"
	"bufferkit/internal/solvererr"
	"bufferkit/internal/tree"
)

// randomDelta draws one typed delta against tr; deltas are valid by
// construction (values in range) though they may make the instance
// infeasible, which the session must report exactly like a cold run.
func randomDelta(rng *rand.Rand, tr *tree.Tree, libSize int) Delta {
	var sinks, inner []int
	for v := range tr.Verts {
		if tr.Verts[v].Kind == tree.Sink {
			sinks = append(sinks, v)
		} else if v != 0 {
			inner = append(inner, v)
		}
	}
	switch k := rng.Intn(4); {
	case k == 0 || len(inner) == 0:
		v := sinks[rng.Intn(len(sinks))]
		return SinkDelta{Vertex: v, RAT: 40 * rng.Float64(), Cap: 0.5 + 4*rng.Float64()}
	case k == 1:
		v := 1 + rng.Intn(tr.Len()-1)
		return EdgeDelta{Vertex: v, R: 0.5 * rng.Float64(), C: 5 * rng.Float64()}
	case k == 2:
		v := inner[rng.Intn(len(inner))]
		var allowed []int
		if rng.Intn(3) == 0 {
			allowed = []int{rng.Intn(libSize)}
		}
		return BufferDelta{Vertex: v, OK: rng.Intn(4) != 0, Allowed: allowed}
	default:
		pen := make([]float64, tr.Len())
		for i := 0; i < 3; i++ {
			pen[rng.Intn(len(pen))] = 5 * rng.Float64()
		}
		return PenaltyDelta{Penalty: pen}
	}
}

// checkSessionVsCold asserts the session's resolve is bit-identical —
// slack, placement, candidates — to a cold run on the patched instance, or
// that both fail with the same typed error.
func checkSessionVsCold(t *testing.T, s *Session, drv delay.Driver, lib library.Library, backend Backend, label string) {
	t.Helper()
	var got Result
	sessErr := s.Resolve(context.Background(), &got)

	cold := NewEngine()
	opt := Options{Driver: drv, Backend: backend, SitePenalty: s.Penalty()}
	if err := cold.Reset(s.Tree(), lib, opt); err != nil {
		t.Fatalf("%s: cold reset: %v", label, err)
	}
	var want Result
	coldErr := cold.Run(&want)

	if (sessErr == nil) != (coldErr == nil) {
		t.Fatalf("%s: session err %v, cold err %v", label, sessErr, coldErr)
	}
	if sessErr != nil {
		if !errors.Is(sessErr, solvererr.ErrInfeasible) || !errors.Is(coldErr, solvererr.ErrInfeasible) {
			t.Fatalf("%s: expected matching infeasibility, session %v cold %v", label, sessErr, coldErr)
		}
		return
	}
	if got.Slack != want.Slack {
		t.Fatalf("%s: slack diverged: session %.17g, cold %.17g", label, got.Slack, want.Slack)
	}
	if got.Candidates != want.Candidates {
		t.Fatalf("%s: candidates diverged: session %d, cold %d", label, got.Candidates, want.Candidates)
	}
	for v := range want.Placement {
		if got.Placement[v] != want.Placement[v] {
			t.Fatalf("%s: placement diverged at vertex %d: session %d, cold %d",
				label, v, got.Placement[v], want.Placement[v])
		}
	}
}

func TestSessionMatchesColdRunUnderRandomPatches(t *testing.T) {
	for _, backend := range []Backend{BackendList, BackendSoA} {
		lib := library.GenerateWithInverters(6)
		for seed := int64(0); seed < 40; seed++ {
			rng := rand.New(rand.NewSource(seed))
			tr := netgen.RandomSmall(seed, 10, 0.3)
			drv := delay.Driver{R: 0.3 * rng.Float64(), K: 10 * rng.Float64()}
			s, err := NewSession(tr, lib, Options{Driver: drv, Backend: backend})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			checkSessionVsCold(t, s, drv, lib, backend, "initial")
			for step := 0; step < 8; step++ {
				d := randomDelta(rng, s.Tree(), len(lib))
				if err := s.Patch(d); err != nil {
					t.Fatalf("seed %d step %d: patch: %v", seed, step, err)
				}
				checkSessionVsCold(t, s, drv, lib, backend, "patched")
			}
			s.Close()
		}
	}
}

func TestSessionPatchBatchAtomic(t *testing.T) {
	tr := netgen.RandomSmall(3, 8, 0)
	lib := smallLib()
	s, err := NewSession(tr, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var sink int
	for v := range s.Tree().Verts {
		if s.Tree().Verts[v].Kind == tree.Sink {
			sink = v
			break
		}
	}
	before := s.Tree().Verts[sink].RAT
	err = s.Patch(
		SinkDelta{Vertex: sink, RAT: before + 10, Cap: 1},
		SinkDelta{Vertex: 0, RAT: 1, Cap: 1}, // vertex 0 is the source: invalid
	)
	var verr *solvererr.ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("expected ValidationError, got %v", err)
	}
	if got := s.Tree().Verts[sink].RAT; got != before {
		t.Fatalf("failed batch mutated the tree: RAT %g, want %g", got, before)
	}
	// The session stays usable.
	var res Result
	if err := s.Resolve(context.Background(), &res); err != nil {
		t.Fatalf("resolve after rejected batch: %v", err)
	}
}

func TestSessionRecoversAfterInfeasiblePatch(t *testing.T) {
	// A negative sink whose only inverter position is disabled cannot reach
	// positive parity at the merge, so the merge vertex becomes mid-tree
	// infeasible; re-enabling the position must fully recover.
	b := tree.NewBuilder()
	m := b.AddInternal(0, 0.1, 1.0)
	b.AddSink(m, 0.2, 1.0, 1.5, 20)
	p := b.AddBufferPos(m, 0.1, 0.5)
	b.AddSinkPol(p, 0.2, 1.0, 1.5, 20, tree.Negative)
	_ = m
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lib := library.GenerateWithInverters(4)
	s, err := NewSession(tr, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var res Result
	if err := s.Resolve(context.Background(), &res); err != nil {
		t.Fatalf("baseline resolve: %v", err)
	}
	base := res.Slack

	if err := s.Patch(BufferDelta{Vertex: p, OK: false}); err != nil {
		t.Fatal(err)
	}
	if err := s.Resolve(context.Background(), &res); !errors.Is(err, solvererr.ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible, got %v", err)
	}

	if err := s.Patch(BufferDelta{Vertex: p, OK: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.Resolve(context.Background(), &res); err != nil {
		t.Fatalf("resolve after recovery: %v", err)
	}
	if res.Slack != base {
		t.Fatalf("slack after recovery %.17g, want %.17g", res.Slack, base)
	}
}

func TestSessionWarmResolveZeroAllocs(t *testing.T) {
	for _, backend := range []Backend{BackendList, BackendSoA} {
		tr := netgen.Random(netgen.Opts{Sinks: 12, Seed: 7})
		lib := library.Generate(8)
		drv := delay.Driver{R: 0.3, K: 5}
		s, err := NewSession(tr, lib, Options{Driver: drv, Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		var sink int
		for v := range s.Tree().Verts {
			if s.Tree().Verts[v].Kind == tree.Sink {
				sink = v
				break
			}
		}
		var res Result
		ctx := context.Background()
		// Warm through at least one full decision-slab rebuild cycle so the
		// steady state (including periodic rebuilds) is measured warm.
		for i := 0; i < 400; i++ {
			if err := s.PatchSink(sink, float64(20+i%7), 1.5); err != nil {
				t.Fatal(err)
			}
			if err := s.Resolve(ctx, &res); err != nil {
				t.Fatal(err)
			}
		}
		i := 0
		allocs := testing.AllocsPerRun(200, func() {
			i++
			if err := s.PatchSink(sink, float64(20+i%7), 1.5); err != nil {
				t.Fatal(err)
			}
			if err := s.Resolve(ctx, &res); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("backend %v: warm session patch+resolve allocates %.1f/op, want 0", backend, allocs)
		}
		s.Close()
	}
}
