package core

import (
	"strings"
	"testing"

	"bufferkit/internal/bruteforce"
	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/lillis"
	"bufferkit/internal/netgen"
	"bufferkit/internal/segment"
	"bufferkit/internal/testutil"
	"bufferkit/internal/tree"
	"bufferkit/internal/vanginneken"
)

func smallLib() library.Library {
	return library.Library{
		{Name: "weak", R: 2.0, Cin: 0.8, K: 8, Cost: 1},
		{Name: "mid", R: 0.9, Cin: 2.0, K: 10, Cost: 2},
		{Name: "strong", R: 0.4, Cin: 5.0, K: 12, Cost: 4},
	}
}

func TestMatchesBruteForceOnRandomSmallNets(t *testing.T) {
	lib := smallLib()
	drv := delay.Driver{R: 0.4, K: 3}
	for seed := int64(0); seed < 60; seed++ {
		tr := netgen.RandomSmall(seed, 5, 0)
		want, err := bruteforce.Best(tr, lib, drv)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Insert(tr, lib, Options{Driver: drv, CheckInvariants: true})
		if err != nil {
			t.Fatal(err)
		}
		if !testutil.AlmostEqual(got.Slack, want.Slack) {
			t.Fatalf("seed %d: core %.12g, brute force %.12g", seed, got.Slack, want.Slack)
		}
		testutil.CheckPlacement(t, tr, lib, got.Placement, drv, got.Slack, "core random")
	}
}

func TestMatchesBruteForceWithRestrictedPositions(t *testing.T) {
	lib := smallLib()
	drv := delay.Driver{R: 0.5}
	for seed := int64(0); seed < 30; seed++ {
		tr := netgen.RandomSmall(seed, 5, 0).Clone()
		// Restrict every other buffer position to a subset of types.
		for i, v := range tr.BufferPositions() {
			if i%2 == 0 {
				tr.Verts[v].Allowed = []int{int(seed+int64(i)) % 3, 2}
			}
		}
		want, err := bruteforce.Best(tr, lib, drv)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Insert(tr, lib, Options{Driver: drv, CheckInvariants: true})
		if err != nil {
			t.Fatal(err)
		}
		if !testutil.AlmostEqual(got.Slack, want.Slack) {
			t.Fatalf("seed %d: core %.12g, brute force %.12g", seed, got.Slack, want.Slack)
		}
		testutil.CheckPlacement(t, tr, lib, got.Placement, drv, got.Slack, "core restricted")
	}
}

// TestMatchesLillisOnMediumNets is the headline equivalence: the O(bn²)
// algorithm and the O(b²n²) baseline are both exact, so they must agree on
// every instance, across library sizes and topologies.
func TestMatchesLillisOnMediumNets(t *testing.T) {
	drv := delay.Driver{R: 0.3, K: 5}
	for _, b := range []int{1, 2, 4, 8, 16} {
		lib := library.Generate(b)
		for seed := int64(0); seed < 8; seed++ {
			base := netgen.Random(netgen.Opts{Sinks: 12, Seed: seed})
			tr, err := segment.Uniform(base, 4)
			if err != nil {
				t.Fatal(err)
			}
			ll, err := lillis.Insert(tr, lib, drv)
			if err != nil {
				t.Fatal(err)
			}
			co, err := Insert(tr, lib, Options{Driver: drv, CheckInvariants: true})
			if err != nil {
				t.Fatal(err)
			}
			if !testutil.AlmostEqual(ll.Slack, co.Slack) {
				t.Fatalf("b=%d seed=%d: lillis %.12g vs core %.12g", b, seed, ll.Slack, co.Slack)
			}
			testutil.CheckPlacement(t, tr, lib, co.Placement, drv, co.Slack, "core medium")
		}
	}
}

func TestMatchesVanGinnekenOnSingleType(t *testing.T) {
	buf := library.Buffer{Name: "b", R: 0.5, Cin: 1.5, K: 6}
	drv := delay.Driver{R: 0.2}
	for seed := int64(0); seed < 10; seed++ {
		base := netgen.Random(netgen.Opts{Sinks: 10, Seed: seed})
		tr, err := segment.Uniform(base, 3)
		if err != nil {
			t.Fatal(err)
		}
		vg, err := vanginneken.Insert(tr, buf, drv)
		if err != nil {
			t.Fatal(err)
		}
		co, err := Insert(tr, library.Library{buf}, Options{Driver: drv})
		if err != nil {
			t.Fatal(err)
		}
		if !testutil.AlmostEqual(vg.Slack, co.Slack) {
			t.Fatalf("seed %d: vg %.12g vs core %.12g", seed, vg.Slack, co.Slack)
		}
	}
}

// TestDestructiveEqualsTransientOnTwoPin: on 2-pin nets the paper's
// destructive pruning is lossless (DESIGN.md §4), so both modes must agree.
func TestDestructiveEqualsTransientOnTwoPin(t *testing.T) {
	drv := delay.Driver{R: 0.3}
	for _, b := range []int{2, 8, 16} {
		lib := library.Generate(b)
		for seed := int64(0); seed < 10; seed++ {
			length := 3000 + float64(seed)*1500
			tr := netgen.TwoPin(length, 20+int(seed)*7, 10+float64(b), 1000, netgen.PaperWire())
			tme, err := Insert(tr, lib, Options{Driver: drv, CheckInvariants: true})
			if err != nil {
				t.Fatal(err)
			}
			des, err := Insert(tr, lib, Options{Driver: drv, Prune: PruneDestructive, CheckInvariants: true})
			if err != nil {
				t.Fatal(err)
			}
			if !testutil.AlmostEqual(tme.Slack, des.Slack) {
				t.Fatalf("b=%d seed=%d: transient %.12g vs destructive %.12g", b, seed, tme.Slack, des.Slack)
			}
		}
	}
}

// TestDestructiveNeverBeatsTransient: destructive pruning only removes
// candidates, so it can never report better slack than the exact mode; and
// its reported slack must still be achievable by its own placement.
func TestDestructiveNeverBeatsTransient(t *testing.T) {
	lib := library.Generate(8)
	drv := delay.Driver{R: 0.4}
	worse := 0
	for seed := int64(0); seed < 40; seed++ {
		base := netgen.Random(netgen.Opts{Sinks: 10, Seed: seed})
		tr, err := segment.Uniform(base, 3)
		if err != nil {
			t.Fatal(err)
		}
		tme, err := Insert(tr, lib, Options{Driver: drv})
		if err != nil {
			t.Fatal(err)
		}
		des, err := Insert(tr, lib, Options{Driver: drv, Prune: PruneDestructive})
		if err != nil {
			t.Fatal(err)
		}
		if des.Slack > tme.Slack+testutil.Tol {
			t.Fatalf("seed %d: destructive %.12g beats exact %.12g", seed, des.Slack, tme.Slack)
		}
		if des.Slack < tme.Slack-testutil.Tol {
			worse++
		}
		testutil.CheckPlacement(t, tr, lib, des.Placement, drv, des.Slack, "destructive placement")
	}
	t.Logf("destructive strictly worse on %d/40 multi-pin nets", worse)
}

func TestPolarityMatchesBruteForce(t *testing.T) {
	lib := library.Library{
		{Name: "buf", R: 0.9, Cin: 1.5, K: 9},
		{Name: "inv", R: 0.7, Cin: 1.2, K: 7, Inverting: true},
	}
	drv := delay.Driver{R: 0.4}
	checked := 0
	for seed := int64(0); seed < 60; seed++ {
		tr := netgen.RandomSmall(seed, 5, 0.5)
		want, err := bruteforce.Best(tr, lib, drv)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Insert(tr, lib, Options{Driver: drv, CheckInvariants: true})
		if !want.Feasible {
			if err == nil {
				t.Fatalf("seed %d: brute force says infeasible, core returned %g", seed, got.Slack)
			}
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: %v (brute force found %g)", seed, err, want.Slack)
		}
		if !testutil.AlmostEqual(got.Slack, want.Slack) {
			t.Fatalf("seed %d: core %.12g, brute force %.12g", seed, got.Slack, want.Slack)
		}
		testutil.CheckPlacement(t, tr, lib, got.Placement, drv, got.Slack, "core polarity")
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d feasible polarity instances exercised", checked)
	}
}

func TestNegativeSinkWithoutInvertersFails(t *testing.T) {
	b := tree.NewBuilder()
	v := b.AddBufferPos(0, 1, 1)
	b.AddSinkPol(v, 1, 1, 2, 100, tree.Negative)
	tr := b.MustBuild()
	if _, err := Insert(tr, smallLib(), Options{}); err == nil || !strings.Contains(err.Error(), "no inverters") {
		t.Fatalf("err = %v", err)
	}
}

func TestNegativeSinkWithNoPositionsInfeasible(t *testing.T) {
	b := tree.NewBuilder()
	v := b.AddInternal(0, 1, 1)
	b.AddSinkPol(v, 1, 1, 2, 100, tree.Negative)
	b.AddSink(v, 1, 1, 2, 100)
	tr := b.MustBuild()
	lib := library.GenerateWithInverters(4)
	if _, err := Insert(tr, lib, Options{}); err == nil || !strings.Contains(err.Error(), "feasible") {
		t.Fatalf("err = %v", err)
	}
}

func TestInverterPairRecoversPolarity(t *testing.T) {
	// A chain with two buffer positions and a positive sink: the optimum may
	// use zero or two inverters, never one.
	lib := library.Library{{Name: "inv", R: 0.5, Cin: 1, K: 5, Inverting: true}}
	tr := netgen.TwoPin(6000, 6, 10, 1000, netgen.PaperWire())
	res, err := Insert(tr, lib, Options{Driver: delay.Driver{R: 0.6}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.Count()%2 != 0 {
		t.Fatalf("odd number of inverters (%d) on a positive sink", res.Placement.Count())
	}
	testutil.CheckPlacement(t, tr, lib, res.Placement, delay.Driver{R: 0.6}, res.Slack, "inverter pair")
}

func TestStatsCoherent(t *testing.T) {
	lib := library.Generate(16)
	tr := netgen.TwoPin(10000, 60, 15, 1200, netgen.PaperWire())
	res, err := Insert(tr, lib, Options{Driver: delay.Driver{R: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Positions != 60 {
		t.Fatalf("Positions = %d, want 60", s.Positions)
	}
	if s.SumHullLen > s.SumListLen {
		t.Fatalf("hull larger than list: %+v", s)
	}
	if s.BetasGenerated > s.Positions*len(lib) {
		t.Fatalf("more betas than b per position: %+v", s)
	}
	if s.BetasKept > s.BetasGenerated || s.BetasKept == 0 {
		t.Fatalf("beta accounting wrong: %+v", s)
	}
	if s.MaxListLen > len(lib)*tr.NumBufferPositions()+1 {
		t.Fatalf("MaxListLen %d exceeds bn+1", s.MaxListLen)
	}
}

func TestDeepChainStability(t *testing.T) {
	// 5000 buffer positions on one wire: exercises allocation, pruning and
	// reconstruction depth in one go.
	lib := library.Generate(4)
	tr := netgen.TwoPin(50000, 5000, 20, 0, netgen.PaperWire())
	drv := delay.Driver{R: 0.5}
	res, err := Insert(tr, lib, Options{Driver: drv})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.Count() < 10 {
		t.Fatalf("suspiciously few buffers (%d) on a 5 cm line", res.Placement.Count())
	}
	testutil.CheckPlacement(t, tr, lib, res.Placement, drv, res.Slack, "deep chain")
}

func TestRejectsInvalidLibrary(t *testing.T) {
	tr := netgen.TwoPin(100, 1, 1, 0, netgen.PaperWire())
	if _, err := Insert(tr, library.Library{}, Options{}); err == nil {
		t.Fatal("accepted empty library")
	}
}

func TestPruneModeString(t *testing.T) {
	if PruneTransient.String() != "transient" || PruneDestructive.String() != "destructive" {
		t.Fatal("PruneMode strings wrong")
	}
	if PruneMode(9).String() != "PruneMode(9)" {
		t.Fatal("unknown PruneMode string wrong")
	}
}
