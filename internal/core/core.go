// Package core implements the paper's contribution: optimal buffer insertion
// with b buffer types in O(bn²) time (Li & Shi, DATE 2005).
//
// The structure is van Ginneken's bottom-up dynamic program. The speedup is
// entirely inside AddBuffer:
//
//  1. Convex-prune the candidate list (Graham's scan over the C-sorted
//     list, O(k)). Every best candidate — the maximizer of Q − R·C for any
//     buffer resistance R — survives (paper Lemma 3).
//  2. With the library pre-sorted by non-increasing driving resistance,
//     walk one pointer forward over the hull: on the concave majorant the
//     objective Q − R·C is unimodal (Lemma 4) and its maximizer moves
//     toward larger C as R decreases (Lemma 1), so finding the best
//     candidates of all b types costs O(k + b) total.
//  3. The b new buffered candidates, emitted in the pre-computed input-
//     capacitance order, merge back into the list in one O(k + b) pass
//     (Theorem 2).
//
// Everything else (add-wire O(k), merge O(k₁ + k₂)) is shared with the
// baselines, giving O(bn²) overall versus Lillis–Cheng–Lin's O(b²n²).
//
// Beyond the paper, the package supports inverting buffer types and sink
// polarity requirements by running the dynamic program on a pair of
// candidate lists (one per required arrival parity), and exposes two
// pruning modes — see PruneMode and DESIGN.md §4.
package core

import (
	"errors"
	"fmt"

	"bufferkit/internal/candidate"
	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/tree"
)

// PruneMode selects how convex pruning interacts with the candidate list.
type PruneMode uint8

const (
	// PruneTransient (default) computes the convex hull as a read-only view
	// used inside AddBuffer, keeping the full nonredundant list. Exact on
	// all nets; same O(bn²) bound.
	PruneTransient PruneMode = iota
	// PruneDestructive removes non-hull candidates from the list itself,
	// exactly as the paper's printed Convexpruning C code does. Exact on
	// 2-pin nets; a fast heuristic on multi-pin nets (the merge operation
	// can promote interior candidates — see DESIGN.md §4).
	PruneDestructive
)

// String implements fmt.Stringer.
func (m PruneMode) String() string {
	switch m {
	case PruneTransient:
		return "transient"
	case PruneDestructive:
		return "destructive"
	}
	return fmt.Sprintf("PruneMode(%d)", uint8(m))
}

// Options configure a run.
type Options struct {
	// Driver is the source driver; the zero value is an ideal driver.
	Driver delay.Driver
	// Prune selects the convex pruning mode.
	Prune PruneMode
	// CheckInvariants validates every candidate list after every operation.
	// For tests; roughly doubles runtime.
	CheckInvariants bool
}

// Stats are instrumentation counters for one run.
type Stats struct {
	// Positions is the number of buffer positions processed.
	Positions int
	// MaxListLen is the largest candidate list length observed.
	MaxListLen int
	// SumListLen accumulates list length at each buffer position.
	SumListLen int
	// SumHullLen accumulates hull size at each buffer position.
	SumHullLen int
	// HullPruned counts candidates off the hull (removed from the list in
	// destructive mode; merely skipped in transient mode).
	HullPruned int
	// BetasGenerated counts buffered candidates produced by the hull walk;
	// BetasKept counts those surviving normalization.
	BetasGenerated, BetasKept int
}

// Result is the outcome of a run.
type Result struct {
	// Slack is the optimal slack at the driver input, in ps.
	Slack float64
	// Placement maps vertex index to a library type index or -1.
	Placement delay.Placement
	// Candidates is the final candidate count at the root (positive-parity
	// list when polarity is active).
	Candidates int
	Stats      Stats
}

// Insert computes optimal buffer insertion on t with library lib.
func Insert(t *tree.Tree, lib library.Library, opt Options) (*Result, error) {
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	polar := lib.HasInverters()
	for i := range t.Verts {
		if t.Verts[i].Kind == tree.Sink && t.Verts[i].Pol == tree.Negative {
			if !lib.HasInverters() {
				return nil, fmt.Errorf("core: sink %d requires negative polarity but the library has no inverters", i)
			}
			polar = true
		}
	}

	e := &engine{
		t:       t,
		lib:     lib,
		opt:     opt,
		polar:   polar,
		orderR:  lib.ByRDesc(),
		cinRank: make([]int, len(lib)),
	}
	for rank, ti := range lib.ByCinAsc() {
		e.cinRank[ti] = rank
	}
	for s := range e.betaSlot {
		e.betaSlot[s] = make([]candidate.Beta, len(lib))
		e.betaHas[s] = make([]bool, len(lib))
	}
	return e.run()
}

// engine holds per-run state and scratch buffers.
type engine struct {
	t     *tree.Tree
	lib   library.Library
	opt   Options
	polar bool

	orderR  []int // type indices, driving resistance non-increasing
	cinRank []int // cinRank[type] = rank in input-capacitance order

	hullBuf  [2][]*candidate.Node
	betaSlot [2][]candidate.Beta // slotted by cin rank, per destination parity
	betaHas  [2][]bool
	betaOrd  [2][]candidate.Beta // cin-ordered betas, per destination parity

	stats Stats
}

// pair is the candidate state at one vertex: pair[0] holds candidates valid
// when the arriving signal has source polarity, pair[1] when inverted. In
// non-polar runs only slot 0 is used. A nil list means "no candidate of
// this parity exists".
type pair [2]*candidate.List

func (e *engine) run() (*Result, error) {
	lists := make([]pair, e.t.Len())
	for _, v := range e.t.PostOrder() {
		vert := &e.t.Verts[v]
		if vert.Kind == tree.Sink {
			s := 0
			if vert.Pol == tree.Negative {
				s = 1
			}
			var p pair
			p[s] = candidate.NewSink(vert.RAT, vert.Cap, v)
			lists[v] = p
			continue
		}
		var acc pair
		first := true
		for _, c := range e.t.Children(v) {
			lc := lists[c]
			lists[c] = pair{}
			r, wc := e.t.Verts[c].EdgeR, e.t.Verts[c].EdgeC
			for s := 0; s < 2; s++ {
				if lc[s] != nil {
					lc[s].AddWire(r, wc)
				}
			}
			if first {
				acc = lc
				first = false
			} else {
				for s := 0; s < 2; s++ {
					merged := mergeNilable(acc[s], lc[s])
					recycleNilable(acc[s])
					recycleNilable(lc[s])
					acc[s] = merged
				}
			}
		}
		if acc[0] == nil && acc[1] == nil {
			return nil, fmt.Errorf("core: subtree at vertex %d has no polarity-feasible candidates", v)
		}
		if vert.BufferOK {
			e.addBuffer(v, &acc, vert.Allowed)
		}
		if err := e.check(&acc); err != nil {
			return nil, err
		}
		if n := lenNilable(acc[0]) + lenNilable(acc[1]); n > e.stats.MaxListLen {
			e.stats.MaxListLen = n
		}
		lists[v] = acc
	}

	root := lists[0][0]
	if root == nil || root.Len() == 0 {
		return nil, errors.New("core: no polarity-feasible solution at the source")
	}
	res := &Result{
		Placement:  delay.NewPlacement(e.t.Len()),
		Candidates: root.Len(),
		Stats:      e.stats,
	}
	best := root.BestForR(e.opt.Driver.R)
	res.Slack = best.Q - e.opt.Driver.R*best.C - e.opt.Driver.K
	best.Dec.Fill(res.Placement)
	return res, nil
}

// addBuffer is the paper's O(k + b) operation (plus a second parity in
// polar runs).
func (e *engine) addBuffer(v int, acc *pair, allowed []int) {
	e.stats.Positions++
	e.stats.SumListLen += lenNilable(acc[0]) + lenNilable(acc[1])

	// Hulls of both source lists, before any new candidate lands.
	var hulls [2][]*candidate.Node
	for s := 0; s < 2; s++ {
		l := acc[s]
		if l == nil || l.Len() == 0 {
			continue
		}
		if e.opt.Prune == PruneDestructive {
			e.stats.HullPruned += l.ConvexPruneInPlace()
			hulls[s] = allNodesInto(l, e.hullBuf[s])
		} else {
			hulls[s] = l.HullViewInto(e.hullBuf[s])
			e.stats.HullPruned += l.Len() - len(hulls[s])
		}
		e.hullBuf[s] = hulls[s]
		e.stats.SumHullLen += len(hulls[s])
	}

	// One monotone pointer per source hull, shared across all types since
	// the library is walked in non-increasing R order (Lemma 1).
	var ptr [2]int
	for _, ti := range e.orderR {
		if len(allowed) > 0 && !contains(allowed, ti) {
			continue
		}
		b := e.lib[ti]
		for src := 0; src < 2; src++ {
			hull := hulls[src]
			if len(hull) == 0 {
				continue
			}
			p := ptr[src]
			// Advance while the next hull candidate is strictly better for
			// this resistance; ties keep the smaller C (the paper's best-
			// candidate definition).
			for p+1 < len(hull) &&
				hull[p+1].Q-b.R*hull[p+1].C > hull[p].Q-b.R*hull[p].C {
				p++
			}
			ptr[src] = p
			dst := src
			if b.Inverting {
				dst = 1 - src
			}
			cand := hull[p]
			beta := candidate.Beta{
				Q:      cand.Q - b.R*cand.C - b.K,
				C:      b.Cin,
				Buffer: ti,
				Vertex: v,
				SrcDec: cand.Dec,
			}
			e.stats.BetasGenerated++
			// Slot by cin rank; keep the better Q on rank collision (two
			// types with equal Cin, or the same type reached from both
			// parities in degenerate cases).
			rank := e.cinRank[ti]
			if !e.betaHas[dst][rank] || beta.Q > e.betaSlot[dst][rank].Q {
				e.betaSlot[dst][rank] = beta
				e.betaHas[dst][rank] = true
			}
		}
	}

	// Emit betas in input-capacitance order (O(b)), normalize, merge.
	for dst := 0; dst < 2; dst++ {
		ord := e.betaOrd[dst][:0]
		for rank := 0; rank < len(e.lib); rank++ {
			if e.betaHas[dst][rank] {
				ord = append(ord, e.betaSlot[dst][rank])
				e.betaHas[dst][rank] = false
			}
		}
		e.betaOrd[dst] = ord
		if len(ord) == 0 {
			continue
		}
		ord = candidate.NormalizeBetas(ord)
		e.stats.BetasKept += len(ord)
		if acc[dst] == nil {
			acc[dst] = &candidate.List{}
		}
		acc[dst].MergeBetas(ord)
	}
}

func (e *engine) check(acc *pair) error {
	if !e.opt.CheckInvariants {
		return nil
	}
	for s := 0; s < 2; s++ {
		if acc[s] == nil {
			continue
		}
		if err := acc[s].Validate(); err != nil {
			return fmt.Errorf("core: invariant violation: %w", err)
		}
	}
	return nil
}

// mergeNilable merges two branch lists of the same parity; if either branch
// offers no candidate of this parity, neither does the merge.
func mergeNilable(a, b *candidate.List) *candidate.List {
	if a == nil || b == nil || a.Len() == 0 || b.Len() == 0 {
		return nil
	}
	return candidate.Merge(a, b)
}

func lenNilable(l *candidate.List) int {
	if l == nil {
		return 0
	}
	return l.Len()
}

// recycleNilable returns a consumed branch list's nodes to the pool.
func recycleNilable(l *candidate.List) {
	if l != nil {
		l.Recycle()
	}
}

// allNodesInto collects every node of l into buf (after destructive pruning
// the whole list is the hull).
func allNodesInto(l *candidate.List, buf []*candidate.Node) []*candidate.Node {
	out := buf[:0]
	for nd := l.Front(); nd != nil; nd = nd.Next() {
		out = append(out, nd)
	}
	return out
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
