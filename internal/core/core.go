// Package core implements the paper's contribution: optimal buffer insertion
// with b buffer types in O(bn²) time (Li & Shi, DATE 2005).
//
// The structure is van Ginneken's bottom-up dynamic program. The speedup is
// entirely inside AddBuffer:
//
//  1. Convex-prune the candidate list (Graham's scan over the C-sorted
//     list, O(k)). Every best candidate — the maximizer of Q − R·C for any
//     buffer resistance R — survives (paper Lemma 3).
//  2. With the library pre-sorted by non-increasing driving resistance,
//     walk one pointer forward over the hull: on the concave majorant the
//     objective Q − R·C is unimodal (Lemma 4) and its maximizer moves
//     toward larger C as R decreases (Lemma 1), so finding the best
//     candidates of all b types costs O(k + b) total.
//  3. The b new buffered candidates, emitted in the pre-computed input-
//     capacitance order, merge back into the list in one O(k + b) pass
//     (Theorem 2).
//
// Everything else (add-wire O(k), merge O(k₁ + k₂)) is shared with the
// baselines, giving O(bn²) overall versus Lillis–Cheng–Lin's O(b²n²).
//
// Beyond the paper, the package supports inverting buffer types and sink
// polarity requirements by running the dynamic program on a pair of
// candidate lists (one per required arrival parity), and exposes two
// pruning modes — see PruneMode and DESIGN.md §4.
//
// Execution is split from construction: an Engine owns a decision Arena and
// every scratch buffer, Reset re-targets it at a net, and Run executes the
// dynamic program. A warm engine re-running on same-shaped nets performs
// zero steady-state heap allocations (asserted by testing.AllocsPerRun in
// the tests), which is what makes the batch API in the bufferkit facade
// scale across worker goroutines instead of across the garbage collector.
package core

import (
	"context"
	"errors"
	"fmt"

	"bufferkit/internal/candidate"
	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/solvererr"
	"bufferkit/internal/tree"
)

// PruneMode selects how convex pruning interacts with the candidate list.
type PruneMode uint8

const (
	// PruneTransient (default) computes the convex hull as a read-only view
	// used inside AddBuffer, keeping the full nonredundant list. Exact on
	// all nets; same O(bn²) bound.
	PruneTransient PruneMode = iota
	// PruneDestructive removes non-hull candidates from the list itself,
	// exactly as the paper's printed Convexpruning C code does. Exact on
	// 2-pin nets; a fast heuristic on multi-pin nets (the merge operation
	// can promote interior candidates — see DESIGN.md §4).
	PruneDestructive
)

// String implements fmt.Stringer.
func (m PruneMode) String() string {
	switch m {
	case PruneTransient:
		return "transient"
	case PruneDestructive:
		return "destructive"
	}
	return fmt.Sprintf("PruneMode(%d)", uint8(m))
}

// Options configure a run.
type Options struct {
	// Driver is the source driver; the zero value is an ideal driver.
	Driver delay.Driver
	// Prune selects the convex pruning mode.
	Prune PruneMode
	// CheckInvariants validates every candidate list after every operation.
	// For tests; roughly doubles runtime.
	CheckInvariants bool
}

// Stats are instrumentation counters for one run.
type Stats struct {
	// Positions is the number of buffer positions processed.
	Positions int
	// MaxListLen is the largest candidate list length observed.
	MaxListLen int
	// SumListLen accumulates list length at each buffer position.
	SumListLen int
	// SumHullLen accumulates hull size at each buffer position.
	SumHullLen int
	// HullPruned counts candidates off the hull (removed from the list in
	// destructive mode; merely skipped in transient mode).
	HullPruned int
	// BetasGenerated counts buffered candidates produced by the hull walk;
	// BetasKept counts those surviving normalization.
	BetasGenerated, BetasKept int
	// Decisions is the number of reconstruction records the arena holds at
	// the end of the run.
	Decisions int
}

// Result is the outcome of a run.
type Result struct {
	// Slack is the optimal slack at the driver input, in ps.
	Slack float64
	// Placement maps vertex index to a library type index or -1.
	Placement delay.Placement
	// Candidates is the final candidate count at the root (positive-parity
	// list when polarity is active).
	Candidates int
	Stats      Stats
}

// Insert computes optimal buffer insertion on t with library lib — the
// single-shot entry point, paying construction on every call. Workloads
// that optimize many nets (or the same net repeatedly) should hold an
// Engine and Reset/Run it instead, or use bufferkit.InsertBatch.
func Insert(t *tree.Tree, lib library.Library, opt Options) (*Result, error) {
	e := NewEngine()
	if err := e.Reset(t, lib, opt); err != nil {
		return nil, err
	}
	res := &Result{}
	if err := e.Run(res); err != nil {
		return nil, err
	}
	return res, nil
}

// Engine is a reusable insertion engine. It owns a decision Arena and all
// scratch state (hull buffers, beta slots, per-vertex list table, library
// orderings), none of which is reallocated across runs: Reset re-targets
// the engine at a (tree, library, options) triple, Run executes one run.
// A warm engine allocates nothing on the steady-state path.
//
// An Engine is not safe for concurrent use; use one per goroutine.
type Engine struct {
	arena *candidate.Arena

	t     *tree.Tree
	lib   library.Library
	opt   Options
	polar bool
	ready bool

	orderR  []int // type indices, driving resistance non-increasing
	cinRank []int // cinRank[type] = rank in input-capacitance order

	hullBuf  [2][]*candidate.Node
	betaSlot [2][]candidate.Beta // slotted by cin rank, per destination parity
	betaHas  [2][]bool
	betaOrd  [2][]candidate.Beta // cin-ordered betas, per destination parity

	lists []pair // per-vertex candidate state, reused across runs

	stats Stats
}

// NewEngine returns an engine with an empty arena. All scratch buffers are
// sized lazily by the first Reset.
func NewEngine() *Engine {
	return &Engine{arena: candidate.NewArena()}
}

// Reset points the engine at a new instance, revalidating the library and
// resizing scratch state. It does not run anything; call Run afterwards.
// Scratch buffers and arena slabs are kept, so resetting to a same-shaped
// instance allocates nothing.
func (e *Engine) Reset(t *tree.Tree, lib library.Library, opt Options) error {
	e.ready = false // a failed Reset must not leave a runnable stale instance
	if err := lib.Validate(); err != nil {
		return err
	}
	polar := lib.HasInverters()
	for i := range t.Verts {
		if t.Verts[i].Kind == tree.Sink && t.Verts[i].Pol == tree.Negative {
			if !lib.HasInverters() {
				return solvererr.Validation("core", "polarity",
					"sink requires negative polarity but the library has no inverters").AtVertex(i)
			}
			polar = true
		}
	}
	e.t, e.opt, e.polar = t, opt, polar

	// Library orderings are recomputed only when the library changes
	// (compared by backing array identity), keeping warm resets free; the
	// change path may allocate, which is fine — it is paid once per
	// library, not per run.
	if !sameLibrary(e.lib, lib) {
		e.lib = lib
		b := len(lib)
		e.orderR = lib.ByRDesc()
		e.cinRank = candidate.Resize(e.cinRank, b)
		for rank, ti := range lib.ByCinAsc() {
			e.cinRank[ti] = rank
		}
		for s := 0; s < 2; s++ {
			e.betaSlot[s] = candidate.Resize(e.betaSlot[s], b)
			e.betaHas[s] = candidate.Resize(e.betaHas[s], b)
			clear(e.betaHas[s])
			e.betaOrd[s] = candidate.Resize(e.betaOrd[s], b)[:0]
		}
	}

	e.lists = candidate.Resize(e.lists, t.Len())
	e.ready = true
	return nil
}

// Release drops the engine's references to the last instance's tree and
// library (retaining arena slabs and scratch capacity), so pooled idle
// engines do not keep whole designs reachable. Reset makes the engine
// runnable again.
func (e *Engine) Release() {
	e.t, e.lib, e.opt = nil, nil, Options{}
	e.ready = false
	clear(e.lists)
}

// Run executes one insertion run on the instance set by Reset, writing the
// outcome into res. res.Placement is reused when its capacity suffices;
// everything else the run needs comes from the engine's arena, which is
// rewound (O(1)) at entry — so Run may be called repeatedly after one
// Reset, each call an independent run.
func (e *Engine) Run(res *Result) error {
	return e.RunContext(context.Background(), res)
}

// RunContext is Run under a context: the per-vertex loop polls ctx at a
// coarse grain (every solvererr.PollMask+1 vertices) and aborts with an error
// wrapping solvererr.ErrCanceled when it fires. With a background context
// the poll is a nil comparison per stride, so the warm path keeps its
// zero-allocation steady state.
func (e *Engine) RunContext(ctx context.Context, res *Result) error {
	if !e.ready {
		return errors.New("core: Run called before a successful Reset")
	}
	e.arena.Reset()
	e.stats = Stats{}
	clear(e.lists)

	for vi, v := range e.t.PostOrder() {
		if vi&solvererr.PollMask == 0 && ctx.Err() != nil {
			return solvererr.Canceled(ctx)
		}
		vert := &e.t.Verts[v]
		if vert.Kind == tree.Sink {
			s := 0
			if vert.Pol == tree.Negative {
				s = 1
			}
			var p pair
			p[s] = e.arena.NewSink(vert.RAT, vert.Cap, v)
			e.lists[v] = p
			continue
		}
		var acc pair
		first := true
		for _, c := range e.t.Children(v) {
			lc := e.lists[c]
			e.lists[c] = pair{}
			r, wc := e.t.Verts[c].EdgeR, e.t.Verts[c].EdgeC
			for s := 0; s < 2; s++ {
				if lc[s] != nil {
					lc[s].AddWire(r, wc)
				}
			}
			if first {
				acc = lc
				first = false
			} else {
				for s := 0; s < 2; s++ {
					merged := mergeNilable(acc[s], lc[s])
					freeNilable(acc[s])
					freeNilable(lc[s])
					acc[s] = merged
				}
			}
		}
		if acc[0] == nil && acc[1] == nil {
			return solvererr.Infeasible("core: subtree at vertex %d has no polarity-feasible candidates", v)
		}
		if vert.BufferOK {
			e.addBuffer(v, &acc, vert.Allowed)
		}
		if err := e.check(&acc); err != nil {
			return err
		}
		if n := lenNilable(acc[0]) + lenNilable(acc[1]); n > e.stats.MaxListLen {
			e.stats.MaxListLen = n
		}
		e.lists[v] = acc
	}

	root := e.lists[0][0]
	if root == nil || root.Len() == 0 {
		return solvererr.Infeasible("core: no polarity-feasible solution at the source")
	}
	e.stats.Decisions = e.arena.NumDecisions()

	res.Placement = res.Placement.Reuse(e.t.Len())
	res.Candidates = root.Len()
	res.Stats = e.stats
	best := root.BestForR(e.opt.Driver.R)
	res.Slack = best.Q - e.opt.Driver.R*best.C - e.opt.Driver.K
	e.arena.Fill(best.Dec, res.Placement)
	return nil
}

// pair is the candidate state at one vertex: pair[0] holds candidates valid
// when the arriving signal has source polarity, pair[1] when inverted. In
// non-polar runs only slot 0 is used. A nil list means "no candidate of
// this parity exists".
type pair [2]*candidate.List

// addBuffer is the paper's O(k + b) operation (plus a second parity in
// polar runs).
func (e *Engine) addBuffer(v int, acc *pair, allowed []int) {
	e.stats.Positions++
	e.stats.SumListLen += lenNilable(acc[0]) + lenNilable(acc[1])

	// Hulls of both source lists, before any new candidate lands.
	var hulls [2][]*candidate.Node
	for s := 0; s < 2; s++ {
		l := acc[s]
		if l == nil || l.Len() == 0 {
			continue
		}
		if e.opt.Prune == PruneDestructive {
			e.stats.HullPruned += l.ConvexPruneInPlace()
			hulls[s] = allNodesInto(l, e.hullBuf[s])
		} else {
			hulls[s] = l.HullViewInto(e.hullBuf[s])
			e.stats.HullPruned += l.Len() - len(hulls[s])
		}
		e.hullBuf[s] = hulls[s]
		e.stats.SumHullLen += len(hulls[s])
	}

	// One monotone pointer per source hull, shared across all types since
	// the library is walked in non-increasing R order (Lemma 1).
	var ptr [2]int
	for _, ti := range e.orderR {
		if len(allowed) > 0 && !contains(allowed, ti) {
			continue
		}
		b := e.lib[ti]
		for src := 0; src < 2; src++ {
			hull := hulls[src]
			if len(hull) == 0 {
				continue
			}
			p := ptr[src]
			// Advance while the next hull candidate is strictly better for
			// this resistance; ties keep the smaller C (the paper's best-
			// candidate definition).
			for p+1 < len(hull) &&
				hull[p+1].Q-b.R*hull[p+1].C > hull[p].Q-b.R*hull[p].C {
				p++
			}
			ptr[src] = p
			dst := src
			if b.Inverting {
				dst = 1 - src
			}
			cand := hull[p]
			beta := candidate.Beta{
				Q:      cand.Q - b.R*cand.C - b.K,
				C:      b.Cin,
				Buffer: ti,
				Vertex: v,
				SrcDec: cand.Dec,
			}
			e.stats.BetasGenerated++
			// Slot by cin rank; keep the better Q on rank collision (two
			// types with equal Cin, or the same type reached from both
			// parities in degenerate cases).
			rank := e.cinRank[ti]
			if !e.betaHas[dst][rank] || beta.Q > e.betaSlot[dst][rank].Q {
				e.betaSlot[dst][rank] = beta
				e.betaHas[dst][rank] = true
			}
		}
	}

	// Emit betas in input-capacitance order (O(b)), normalize, merge.
	for dst := 0; dst < 2; dst++ {
		ord := e.betaOrd[dst][:0]
		for rank := 0; rank < len(e.lib); rank++ {
			if e.betaHas[dst][rank] {
				ord = append(ord, e.betaSlot[dst][rank])
				e.betaHas[dst][rank] = false
			}
		}
		e.betaOrd[dst] = ord
		if len(ord) == 0 {
			continue
		}
		ord = candidate.NormalizeBetas(ord)
		e.stats.BetasKept += len(ord)
		if acc[dst] == nil {
			acc[dst] = e.arena.NewList()
		}
		acc[dst].MergeBetas(ord)
	}
}

func (e *Engine) check(acc *pair) error {
	if !e.opt.CheckInvariants {
		return nil
	}
	for s := 0; s < 2; s++ {
		if acc[s] == nil {
			continue
		}
		if err := acc[s].Validate(); err != nil {
			return fmt.Errorf("core: invariant violation: %w", err)
		}
	}
	return nil
}

// sameLibrary reports whether two libraries share the same backing array —
// the immutability contract on Library makes identity equivalent to
// equality here, and it keeps warm Resets free of sorting work.
func sameLibrary(a, b library.Library) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}

// mergeNilable merges two branch lists of the same parity; if either branch
// offers no candidate of this parity, neither does the merge.
func mergeNilable(a, b *candidate.List) *candidate.List {
	if a == nil || b == nil || a.Len() == 0 || b.Len() == 0 {
		return nil
	}
	return candidate.Merge(a, b)
}

func lenNilable(l *candidate.List) int {
	if l == nil {
		return 0
	}
	return l.Len()
}

// freeNilable returns a consumed branch list (nodes and header) to the
// arena.
func freeNilable(l *candidate.List) {
	if l != nil {
		l.Free()
	}
}

// allNodesInto collects every node of l into buf (after destructive pruning
// the whole list is the hull).
func allNodesInto(l *candidate.List, buf []*candidate.Node) []*candidate.Node {
	out := buf[:0]
	for nd := l.Front(); nd != nil; nd = nd.Next() {
		out = append(out, nd)
	}
	return out
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
