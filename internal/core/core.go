// Package core implements the paper's contribution: optimal buffer insertion
// with b buffer types in O(bn²) time (Li & Shi, DATE 2005).
//
// The structure is van Ginneken's bottom-up dynamic program. The speedup is
// entirely inside AddBuffer:
//
//  1. Convex-prune the candidate list (Graham's scan over the C-sorted
//     list, O(k)). Every best candidate — the maximizer of Q − R·C for any
//     buffer resistance R — survives (paper Lemma 3).
//  2. With the library pre-sorted by non-increasing driving resistance,
//     walk one pointer forward over the hull: on the concave majorant the
//     objective Q − R·C is unimodal (Lemma 4) and its maximizer moves
//     toward larger C as R decreases (Lemma 1), so finding the best
//     candidates of all b types costs O(k + b) total.
//  3. The b new buffered candidates, emitted in the pre-computed input-
//     capacitance order, merge back into the list in one O(k + b) pass
//     (Theorem 2).
//
// Everything else (add-wire O(k), merge O(k₁ + k₂)) is shared with the
// baselines, giving O(bn²) overall versus Lillis–Cheng–Lin's O(b²n²).
//
// Beyond the paper, the package supports inverting buffer types and sink
// polarity requirements by running the dynamic program on a pair of
// candidate lists (one per required arrival parity), and exposes two
// pruning modes — see PruneMode and DESIGN.md §4.
//
// The dynamic program exists once, generic over the candidate-list
// representation (see engine.go): Options.Backend selects the paper's
// doubly-linked list or the cache-friendly structure-of-arrays slabs, with
// identical results and instrumentation either way. DESIGN.md §11 records
// the measured trade-off; the SoA backend is the default.
//
// Execution is split from construction: an Engine owns a decision Arena and
// every scratch buffer, Reset re-targets it at a net, and Run executes the
// dynamic program. A warm engine re-running on same-shaped nets performs
// zero steady-state heap allocations on either backend (asserted by
// testing.AllocsPerRun in the tests), which is what makes the batch API in
// the bufferkit facade scale across worker goroutines instead of across the
// garbage collector.
package core

import (
	"context"
	"errors"
	"fmt"

	"bufferkit/internal/candidate"
	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/solvererr"
	"bufferkit/internal/tree"
)

// PruneMode selects how convex pruning interacts with the candidate list.
type PruneMode uint8

const (
	// PruneTransient (default) computes the convex hull as a read-only view
	// used inside AddBuffer, keeping the full nonredundant list. Exact on
	// all nets; same O(bn²) bound.
	PruneTransient PruneMode = iota
	// PruneDestructive removes non-hull candidates from the list itself,
	// exactly as the paper's printed Convexpruning C code does. Exact on
	// 2-pin nets; a fast heuristic on multi-pin nets (the merge operation
	// can promote interior candidates — see DESIGN.md §4).
	PruneDestructive
)

// String implements fmt.Stringer.
func (m PruneMode) String() string {
	switch m {
	case PruneTransient:
		return "transient"
	case PruneDestructive:
		return "destructive"
	}
	return fmt.Sprintf("PruneMode(%d)", uint8(m))
}

// Backend selects the candidate-list representation the dynamic program
// runs on; see internal/candidate.Backend.
type Backend = candidate.Backend

// Re-exported backend constants.
const (
	// BackendDefault resolves to DefaultBackend.
	BackendDefault = candidate.BackendDefault
	// BackendList is the paper's doubly-linked candidate list.
	BackendList = candidate.BackendList
	// BackendSoA is the structure-of-arrays representation.
	BackendSoA = candidate.BackendSoA
	// DefaultBackend is the representation the benchmarks measured fastest.
	DefaultBackend = candidate.DefaultBackend
)

// ParseBackend resolves a backend name ("list", "soa", "" / "default").
func ParseBackend(name string) (Backend, error) { return candidate.ParseBackend(name) }

// Options configure a run.
type Options struct {
	// Driver is the source driver; the zero value is an ideal driver.
	Driver delay.Driver
	// Prune selects the convex pruning mode.
	Prune PruneMode
	// Backend selects the candidate-list representation; the zero value
	// resolves to DefaultBackend. Results are identical across backends.
	Backend Backend
	// CheckInvariants validates every candidate list after every operation.
	// For tests; roughly doubles runtime.
	CheckInvariants bool
	// SitePenalty, when non-nil, is a per-vertex slack penalty (ps): every
	// buffered candidate created at vertex v has SitePenalty[v] subtracted
	// from its Q. It is the hook the chip-scale allocator (internal/chip)
	// uses to fold Lagrangian site prices into the per-net oracle. The DP
	// then maximizes min over sinks of slack minus the summed penalties on
	// the path to that sink — exact pricing on 2-pin nets, a pessimistic
	// heuristic on multi-sink nets (the min at merges is not additive; see
	// DESIGN.md §14). nil (the default) is bit-identical to an all-zero
	// penalty vector at zero cost. Length must be at least the tree size.
	SitePenalty []float64
}

// Stats are instrumentation counters for one run. Both backends populate
// every counter identically (asserted by TestBackendStatsParity).
type Stats struct {
	// Positions is the number of buffer positions processed.
	Positions int
	// MaxListLen is the largest candidate list length observed.
	MaxListLen int
	// SumListLen accumulates list length at each buffer position.
	SumListLen int
	// SumHullLen accumulates hull size at each buffer position.
	SumHullLen int
	// HullPruned counts candidates off the hull (removed from the list in
	// destructive mode; merely skipped in transient mode).
	HullPruned int
	// BetasGenerated counts buffered candidates produced by the hull walk;
	// BetasKept counts those surviving normalization.
	BetasGenerated, BetasKept int
	// Decisions is the number of reconstruction records the arena holds at
	// the end of the run.
	Decisions int
	// ArenaBytes is the slab memory the engine's arena retains after the
	// run — the warm working-set footprint (slabs survive Reset).
	ArenaBytes int
}

// SameCounters reports whether two runs performed identical DP work:
// every counter equal, ignoring ArenaBytes — the footprint depends on
// backend element sizes and slab warmth, not on the work performed, so
// the backend-parity contract excludes it.
func (s Stats) SameCounters(o Stats) bool {
	s.ArenaBytes, o.ArenaBytes = 0, 0
	return s == o
}

// Result is the outcome of a run.
type Result struct {
	// Slack is the optimal slack at the driver input, in ps.
	Slack float64
	// Placement maps vertex index to a library type index or -1.
	Placement delay.Placement
	// Candidates is the final candidate count at the root (positive-parity
	// list when polarity is active).
	Candidates int
	Stats      Stats
}

// Insert computes optimal buffer insertion on t with library lib — the
// single-shot entry point, paying construction on every call. Workloads
// that optimize many nets (or the same net repeatedly) should hold an
// Engine and Reset/Run it instead, or use bufferkit.InsertBatch.
func Insert(t *tree.Tree, lib library.Library, opt Options) (*Result, error) {
	e := NewEngine()
	if err := e.Reset(t, lib, opt); err != nil {
		return nil, err
	}
	res := &Result{}
	if err := e.Run(res); err != nil {
		return nil, err
	}
	return res, nil
}

// Engine is a reusable insertion engine. It owns one decision Arena plus a
// lazily built implementation per backend (each with its own hull buffers,
// beta slots, per-vertex list table and library orderings), none of which
// is reallocated across runs: Reset re-targets the engine at a (tree,
// library, options) triple — including the backend — and Run executes one
// run. A warm engine allocates nothing on the steady-state path, on either
// backend.
//
// An Engine is not safe for concurrent use; use one per goroutine.
type Engine struct {
	arena *candidate.Arena

	list *engine[*candidate.List, candidate.ListAlloc]
	soa  *engine[*candidate.SoAList, candidate.SoAAlloc]
	cur  runner

	backend Backend
	ready   bool
}

// NewEngine returns an engine with an empty arena. All scratch buffers are
// sized lazily by the first Reset.
func NewEngine() *Engine {
	return &Engine{arena: candidate.NewArena()}
}

// Backend returns the resolved backend of the last successful Reset.
func (e *Engine) Backend() Backend { return e.backend }

// Reset points the engine at a new instance, revalidating the library,
// resolving the backend and resizing that backend's scratch state. It does
// not run anything; call Run afterwards. Scratch buffers and arena slabs
// are kept — both backend implementations share one arena, and only one
// runs at a time — so resetting to a same-shaped instance allocates
// nothing.
func (e *Engine) Reset(t *tree.Tree, lib library.Library, opt Options) error {
	e.ready = false // a failed Reset must not leave a runnable stale instance
	if err := lib.Validate(); err != nil {
		return err
	}
	if opt.SitePenalty != nil && len(opt.SitePenalty) < t.Len() {
		return solvererr.Validation("core", "site_penalty",
			"penalty vector length %d < tree size %d", len(opt.SitePenalty), t.Len())
	}
	polar := lib.HasInverters()
	for i := range t.Verts {
		if t.Verts[i].Kind == tree.Sink && t.Verts[i].Pol == tree.Negative {
			if !lib.HasInverters() {
				return solvererr.Validation("core", "polarity",
					"sink requires negative polarity but the library has no inverters").AtVertex(i)
			}
			polar = true
		}
	}

	switch backend := opt.Backend.Resolve(); backend {
	case BackendList:
		if e.list == nil {
			e.list = &engine[*candidate.List, candidate.ListAlloc]{arena: e.arena}
		}
		e.list.reset(t, lib, opt, polar)
		e.cur, e.backend = e.list, backend
	case BackendSoA:
		if e.soa == nil {
			e.soa = &engine[*candidate.SoAList, candidate.SoAAlloc]{arena: e.arena}
		}
		e.soa.reset(t, lib, opt, polar)
		e.cur, e.backend = e.soa, backend
	default:
		return solvererr.Validation("core", "backend", "unknown backend %v", opt.Backend)
	}
	e.ready = true
	return nil
}

// Release drops the engine's references to the last instance's tree and
// library (retaining arena slabs and scratch capacity), so pooled idle
// engines do not keep whole designs reachable. Reset makes the engine
// runnable again.
func (e *Engine) Release() {
	if e.list != nil {
		e.list.release()
	}
	if e.soa != nil {
		e.soa.release()
	}
	e.cur = nil
	e.ready = false
}

// Run executes one insertion run on the instance set by Reset, writing the
// outcome into res. res.Placement is reused when its capacity suffices;
// everything else the run needs comes from the engine's arena, which is
// rewound (O(1)) at entry — so Run may be called repeatedly after one
// Reset, each call an independent run.
func (e *Engine) Run(res *Result) error {
	return e.RunContext(context.Background(), res)
}

// RunContext is Run under a context: the per-vertex loop polls ctx at a
// coarse grain (every solvererr.PollMask+1 vertices) and aborts with an error
// wrapping solvererr.ErrCanceled when it fires. With a background context
// the poll is a nil comparison per stride, so the warm path keeps its
// zero-allocation steady state.
func (e *Engine) RunContext(ctx context.Context, res *Result) error {
	if !e.ready {
		return errors.New("core: Run called before a successful Reset")
	}
	return e.cur.runContext(ctx, res)
}

// ResolveRetained executes one run that checkpoints every vertex's
// candidate frontier for incremental re-solving, recomputing only the
// vertices marked dirty (or everything when full is set, rewinding the
// arena first). It is the engine face of Session; see Session for the
// dirty-closure and rebuild-scheduling contract. It returns the number of
// vertices recomputed. Results are bit-identical to RunContext on the same
// instance. Interleaving RunContext (which rewinds the arena) with retained
// resolves invalidates the checkpoints; the next ResolveRetained must be
// full.
func (e *Engine) ResolveRetained(ctx context.Context, res *Result, dirty []bool, full bool) (int, error) {
	if !e.ready {
		return 0, errors.New("core: ResolveRetained called before a successful Reset")
	}
	return e.cur.resolveRetained(ctx, res, dirty, full)
}

// Decisions returns the number of reconstruction records currently in the
// arena — the growth signal Session uses to schedule full rebuilds, since
// retained delta resolves append decision records without reclaiming
// superseded ones.
func (e *Engine) Decisions() int { return e.arena.NumDecisions() }
