package core

import (
	"context"
	"fmt"

	"bufferkit/internal/candidate"
	"bufferkit/internal/library"
	"bufferkit/internal/solvererr"
	"bufferkit/internal/tree"
)

// runner is the backend-erased face of engine[L, A] the Engine facade
// dispatches through — one indirect call per Reset/Run, nothing per vertex.
type runner interface {
	reset(t *tree.Tree, lib library.Library, opt Options, polar bool)
	runContext(ctx context.Context, res *Result) error
	resolveRetained(ctx context.Context, res *Result, dirty []bool, full bool) (int, error)
	release()
}

// pair is the candidate state at one vertex: pair[0] holds candidates valid
// when the arriving signal has source polarity, pair[1] when inverted. In
// non-polar runs only slot 0 is used. A zero (nil) list means "no candidate
// of this parity exists".
type pair[L candidate.Rep[L]] [2]L

// engine is the generic implementation of the paper's algorithm over one
// candidate representation. It shares the owning Engine's arena (only one
// backend runs at a time, and every run rewinds the arena at entry) but
// owns its scratch: hulls, beta slots, the per-vertex list table, and the
// library orderings.
type engine[L candidate.Rep[L], A candidate.Alloc[L]] struct {
	alloc A
	arena *candidate.Arena

	t     *tree.Tree
	lib   library.Library
	opt   Options
	polar bool

	orderR  []int // type indices, driving resistance non-increasing
	cinRank []int // cinRank[type] = rank in input-capacitance order

	hull     [2]candidate.Hull   // packed hulls, per source parity
	betaSlot [2][]candidate.Beta // slotted by cin rank, per destination parity
	betaHas  [2][]bool
	betaOrd  [2][]candidate.Beta // cin-ordered betas, per destination parity

	lists []pair[L] // per-vertex candidate state, reused across runs

	stats Stats
}

// reset re-targets the engine at a validated (tree, library, options)
// triple; the facade has already validated the instance, so reset only
// resizes scratch. Warm resets to a same-shaped instance allocate nothing.
func (e *engine[L, A]) reset(t *tree.Tree, lib library.Library, opt Options, polar bool) {
	e.t, e.opt, e.polar = t, opt, polar

	// Library orderings are recomputed only when the library changes
	// (compared by backing array identity), keeping warm resets free; the
	// change path may allocate, which is fine — it is paid once per
	// library, not per run.
	if !sameLibrary(e.lib, lib) {
		e.lib = lib
		b := len(lib)
		e.orderR = lib.ByRDesc()
		e.cinRank = candidate.Resize(e.cinRank, b)
		for rank, ti := range lib.ByCinAsc() {
			e.cinRank[ti] = rank
		}
		for s := 0; s < 2; s++ {
			e.betaSlot[s] = candidate.Resize(e.betaSlot[s], b)
			e.betaHas[s] = candidate.Resize(e.betaHas[s], b)
			clear(e.betaHas[s])
			e.betaOrd[s] = candidate.Resize(e.betaOrd[s], b)[:0]
		}
	}

	e.lists = candidate.Resize(e.lists, t.Len())
}

// release drops the engine's references to the last instance's tree and
// library (retaining scratch capacity), so pooled idle engines do not keep
// whole designs reachable.
func (e *engine[L, A]) release() {
	e.t, e.lib, e.opt = nil, nil, Options{}
	clear(e.lists)
}

// runContext executes one insertion run — van Ginneken's bottom-up dynamic
// program with the paper's O(k+b) add-buffer — on the instance set by
// reset. The per-vertex loop polls ctx at a coarse grain (every
// solvererr.PollMask+1 vertices); with a background context the poll is a
// nil comparison per stride, so the warm path keeps its zero-allocation
// steady state.
func (e *engine[L, A]) runContext(ctx context.Context, res *Result) error {
	var zero L
	e.arena.Reset()
	e.stats = Stats{}
	clear(e.lists)

	for vi, v := range e.t.PostOrder() {
		if vi&solvererr.PollMask == 0 && ctx.Err() != nil {
			return solvererr.Canceled(ctx)
		}
		vert := &e.t.Verts[v]
		if vert.Kind == tree.Sink {
			s := 0
			if vert.Pol == tree.Negative {
				s = 1
			}
			var p pair[L]
			p[s] = e.alloc.Sink(e.arena, vert.RAT, vert.Cap, v)
			e.lists[v] = p
			continue
		}
		var acc pair[L]
		first := true
		for _, c := range e.t.Children(v) {
			lc := e.lists[c]
			e.lists[c] = pair[L]{}
			r, wc := e.t.Verts[c].EdgeR, e.t.Verts[c].EdgeC
			for s := 0; s < 2; s++ {
				if lc[s] != zero {
					lc[s].AddWire(r, wc)
				}
			}
			if first {
				acc = lc
				first = false
			} else {
				for s := 0; s < 2; s++ {
					merged := mergeNil(acc[s], lc[s])
					freeNil(acc[s])
					freeNil(lc[s])
					acc[s] = merged
				}
			}
		}
		if acc[0] == zero && acc[1] == zero {
			return solvererr.Infeasible("core: subtree at vertex %d has no polarity-feasible candidates", v)
		}
		if vert.BufferOK {
			e.addBuffer(v, &acc, vert.Allowed)
		}
		if err := e.check(&acc); err != nil {
			return err
		}
		if n := lenNil(acc[0]) + lenNil(acc[1]); n > e.stats.MaxListLen {
			e.stats.MaxListLen = n
		}
		e.lists[v] = acc
	}

	root := e.lists[0][0]
	if root == zero || root.Len() == 0 {
		return solvererr.Infeasible("core: no polarity-feasible solution at the source")
	}
	e.stats.Decisions = e.arena.NumDecisions()
	e.stats.ArenaBytes = e.arena.Bytes()

	res.Placement = res.Placement.Reuse(e.t.Len())
	res.Candidates = root.Len()
	res.Stats = e.stats
	q, c, dec, _ := root.Best(e.opt.Driver.R)
	res.Slack = q - e.opt.Driver.R*c - e.opt.Driver.K
	e.arena.Fill(dec, res.Placement)
	return nil
}

// resolveRetained executes one insertion run that keeps every vertex's
// final candidate pair in e.lists as a checkpoint instead of consuming it
// into the arena, so a later call can recompute only the vertices marked in
// dirty (which must be closed under "parent of a dirty vertex is dirty" —
// the Session guarantees this by marking whole vertex-to-root paths).
//
// Where runContext wires and merges a child's list destructively, this pass
// clones the child's checkpoint and consumes the clone, leaving the
// checkpoint intact for the next resolve. The clone then undergoes exactly
// the float operations the destructive path performs on the original, in
// the same order, so every candidate value — and therefore slack, placement
// and cost — is bit-identical to a cold run on the same instance (the ECO
// differential suite enforces this on both backends).
//
// full forces a from-scratch pass: the arena is rewound (invalidating every
// checkpoint and decision) and all vertices recompute. Delta passes append
// decision records without reclaiming superseded ones, so the Session
// schedules a full pass whenever the decision slab outgrows its
// post-rebuild baseline.
//
// It returns the number of vertices recomputed. On error the checkpoint
// state is unspecified; the caller must force a full pass before trusting
// another resolve.
func (e *engine[L, A]) resolveRetained(ctx context.Context, res *Result, dirty []bool, full bool) (int, error) {
	var zero L
	if full {
		e.arena.Reset()
		clear(e.lists)
	}
	e.stats = Stats{}
	recomputed := 0

	for vi, v := range e.t.PostOrder() {
		if vi&solvererr.PollMask == 0 && ctx.Err() != nil {
			return recomputed, solvererr.Canceled(ctx)
		}
		if !full && !dirty[v] {
			continue
		}
		recomputed++
		vert := &e.t.Verts[v]
		old := e.lists[v]
		if vert.Kind == tree.Sink {
			var p pair[L]
			s := 0
			if vert.Pol == tree.Negative {
				s = 1
			}
			p[s] = e.alloc.Sink(e.arena, vert.RAT, vert.Cap, v)
			e.lists[v] = p
			freeNil(old[0])
			freeNil(old[1])
			continue
		}
		var acc pair[L]
		first := true
		for _, c := range e.t.Children(v) {
			cp := e.lists[c]
			var lc pair[L]
			for s := 0; s < 2; s++ {
				if cp[s] != zero {
					lc[s] = cp[s].Clone()
				}
			}
			r, wc := e.t.Verts[c].EdgeR, e.t.Verts[c].EdgeC
			for s := 0; s < 2; s++ {
				if lc[s] != zero {
					lc[s].AddWire(r, wc)
				}
			}
			if first {
				acc = lc
				first = false
			} else {
				for s := 0; s < 2; s++ {
					merged := mergeNil(acc[s], lc[s])
					freeNil(acc[s])
					freeNil(lc[s])
					acc[s] = merged
				}
			}
		}
		if acc[0] == zero && acc[1] == zero {
			return recomputed, solvererr.Infeasible("core: subtree at vertex %d has no polarity-feasible candidates", v)
		}
		if vert.BufferOK {
			e.addBuffer(v, &acc, vert.Allowed)
		}
		if err := e.check(&acc); err != nil {
			return recomputed, err
		}
		if n := lenNil(acc[0]) + lenNil(acc[1]); n > e.stats.MaxListLen {
			e.stats.MaxListLen = n
		}
		freeNil(old[0])
		freeNil(old[1])
		e.lists[v] = acc
	}

	root := e.lists[0][0]
	if root == zero || root.Len() == 0 {
		return recomputed, solvererr.Infeasible("core: no polarity-feasible solution at the source")
	}
	e.stats.Decisions = e.arena.NumDecisions()
	e.stats.ArenaBytes = e.arena.Bytes()

	res.Placement = res.Placement.Reuse(e.t.Len())
	res.Candidates = root.Len()
	res.Stats = e.stats
	q, c, dec, _ := root.Best(e.opt.Driver.R)
	res.Slack = q - e.opt.Driver.R*c - e.opt.Driver.K
	e.arena.Fill(dec, res.Placement)
	return recomputed, nil
}

// addBuffer is the paper's O(k + b) operation (plus a second parity in
// polar runs): materialize the concave majorant of each source list as a
// packed Hull, walk one monotone pointer per hull across the library in
// non-increasing R order (Lemmas 1 and 4), slot the surviving buffered
// candidates by input-capacitance rank, and merge them back in one pass
// (Theorem 2).
func (e *engine[L, A]) addBuffer(v int, acc *pair[L], allowed []int) {
	var zero L
	e.stats.Positions++
	e.stats.SumListLen += lenNil(acc[0]) + lenNil(acc[1])

	// Hulls of both source lists, before any new candidate lands.
	for s := 0; s < 2; s++ {
		h := &e.hull[s]
		h.Reset()
		l := acc[s]
		if l == zero || l.Len() == 0 {
			continue
		}
		if e.opt.Prune == PruneDestructive {
			e.stats.HullPruned += l.ConvexPruneInPlace()
			l.AppendAllInto(h)
		} else {
			l.AppendHullInto(h)
			e.stats.HullPruned += l.Len() - h.Len()
		}
		e.stats.SumHullLen += h.Len()
	}

	// Per-vertex site price: a candidate buffered here starts its upstream
	// life with the price already paid. The nil path performs exactly the
	// original float operations, keeping unpriced runs bit-identical.
	penalty := 0.0
	if pen := e.opt.SitePenalty; pen != nil {
		penalty = pen[v]
	}

	// One monotone pointer per source hull, shared across all types since
	// the library is walked in non-increasing R order (Lemma 1). The walk
	// reads the packed hull arrays directly — no candidate structures, no
	// representation dispatch. decPos carries each parity's decision-
	// resolution cursor through HullDec (monotone alongside ptr).
	var ptr, decPos [2]int
	for _, ti := range e.orderR {
		if len(allowed) > 0 && !contains(allowed, ti) {
			continue
		}
		b := e.lib[ti]
		for src := 0; src < 2; src++ {
			h := &e.hull[src]
			n := h.Len()
			if n == 0 {
				continue
			}
			p := ptr[src]
			// Advance while the next hull candidate is strictly better for
			// this resistance; ties keep the smaller C (the paper's best-
			// candidate definition).
			for p+1 < n && h.Q[p+1]-b.R*h.C[p+1] > h.Q[p]-b.R*h.C[p] {
				p++
			}
			ptr[src] = p
			dst := src
			if b.Inverting {
				dst = 1 - src
			}
			srcDec, cursor := acc[src].HullDec(h, p, decPos[src])
			decPos[src] = cursor
			q := h.Q[p] - b.R*h.C[p] - b.K
			if penalty != 0 {
				q -= penalty
			}
			beta := candidate.Beta{
				Q:      q,
				C:      b.Cin,
				Buffer: ti,
				Vertex: v,
				SrcDec: srcDec,
			}
			e.stats.BetasGenerated++
			// Slot by cin rank; keep the better Q on rank collision (two
			// types with equal Cin, or the same type reached from both
			// parities in degenerate cases).
			rank := e.cinRank[ti]
			if !e.betaHas[dst][rank] || beta.Q > e.betaSlot[dst][rank].Q {
				e.betaSlot[dst][rank] = beta
				e.betaHas[dst][rank] = true
			}
		}
	}

	// Emit betas in input-capacitance order (O(b)), normalize, merge.
	for dst := 0; dst < 2; dst++ {
		ord := e.betaOrd[dst][:0]
		for rank := 0; rank < len(e.lib); rank++ {
			if e.betaHas[dst][rank] {
				ord = append(ord, e.betaSlot[dst][rank])
				e.betaHas[dst][rank] = false
			}
		}
		e.betaOrd[dst] = ord
		if len(ord) == 0 {
			continue
		}
		ord = candidate.NormalizeBetas(ord)
		e.stats.BetasKept += len(ord)
		if acc[dst] == zero {
			acc[dst] = e.alloc.Empty(e.arena)
		}
		acc[dst].MergeBetas(ord)
	}
}

func (e *engine[L, A]) check(acc *pair[L]) error {
	if !e.opt.CheckInvariants {
		return nil
	}
	var zero L
	for s := 0; s < 2; s++ {
		if acc[s] == zero {
			continue
		}
		if err := acc[s].Validate(); err != nil {
			return fmt.Errorf("core: invariant violation: %w", err)
		}
	}
	return nil
}

// sameLibrary reports whether two libraries share the same backing array —
// the immutability contract on Library makes identity equivalent to
// equality here, and it keeps warm resets free of sorting work.
func sameLibrary(a, b library.Library) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}

// mergeNil merges two branch lists of the same parity; if either branch
// offers no candidate of this parity, neither does the merge.
func mergeNil[L candidate.Rep[L]](a, b L) L {
	var zero L
	if a == zero || b == zero || a.Len() == 0 || b.Len() == 0 {
		return zero
	}
	return a.MergeWith(b)
}

func lenNil[L candidate.Rep[L]](l L) int {
	var zero L
	if l == zero {
		return 0
	}
	return l.Len()
}

// freeNil returns a consumed branch list (and its storage) to the arena.
func freeNil[L candidate.Rep[L]](l L) {
	var zero L
	if l != zero {
		l.Free()
	}
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
