package core

import (
	"testing"

	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/netgen"
	"bufferkit/internal/segment"
	"bufferkit/internal/tree"
)

// TestBackendsAgreeExactly runs the identical instance through both
// candidate-list backends and demands bit-exact agreement — slack,
// placement, candidate count — across topologies, polarities, restricted
// positions and both prune modes. The backends execute the same arithmetic
// in the same order; only the memory layout differs, so any divergence is a
// bug, not float noise.
func TestBackendsAgreeExactly(t *testing.T) {
	drv := delay.Driver{R: 0.3, K: 5}
	type instance struct {
		name string
		tr   *tree.Tree
		lib  library.Library
	}
	var instances []instance
	for seed := int64(0); seed < 10; seed++ {
		base := netgen.Random(netgen.Opts{Sinks: 10, Seed: seed})
		tr, err := segment.Uniform(base, 3)
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, instance{"random", tr, library.Generate(8)})
	}
	instances = append(instances,
		instance{"twopin", netgen.TwoPin(10000, 60, 15, 1200, netgen.PaperWire()), library.Generate(16)},
		instance{"bushy", netgen.Balanced(3, 4, 400, 8, 900, netgen.PaperWire()), library.Generate(8)},
	)
	for seed := int64(0); seed < 20; seed++ {
		instances = append(instances,
			instance{"polar", netgen.RandomSmall(seed, 5, 0.5), library.GenerateWithInverters(3)})
	}
	restricted := netgen.RandomSmall(3, 5, 0).Clone()
	for i, v := range restricted.BufferPositions() {
		if i%2 == 0 {
			restricted.Verts[v].Allowed = []int{i % 3, 2}
		}
	}
	instances = append(instances, instance{"restricted", restricted, library.Generate(3)})

	for _, inst := range instances {
		for _, prune := range []PruneMode{PruneTransient, PruneDestructive} {
			list, errL := Insert(inst.tr, inst.lib, Options{Driver: drv, Prune: prune, Backend: BackendList, CheckInvariants: true})
			soa, errS := Insert(inst.tr, inst.lib, Options{Driver: drv, Prune: prune, Backend: BackendSoA, CheckInvariants: true})
			if (errL == nil) != (errS == nil) {
				t.Fatalf("%s/%v: feasibility diverges: list err %v, soa err %v", inst.name, prune, errL, errS)
			}
			if errL != nil {
				continue // both infeasible — agreement established
			}
			if soa.Slack != list.Slack {
				t.Fatalf("%s/%v: slack %.17g (soa) != %.17g (list)", inst.name, prune, soa.Slack, list.Slack)
			}
			if soa.Candidates != list.Candidates {
				t.Fatalf("%s/%v: candidates %d != %d", inst.name, prune, soa.Candidates, list.Candidates)
			}
			for v := range list.Placement {
				if soa.Placement[v] != list.Placement[v] {
					t.Fatalf("%s/%v: placements differ at vertex %d", inst.name, prune, v)
				}
			}
			if !soa.Stats.SameCounters(list.Stats) {
				t.Fatalf("%s/%v: stats differ:\nsoa  %+v\nlist %+v", inst.name, prune, soa.Stats, list.Stats)
			}
		}
	}
}

// TestBackendStatsParity pins the satellite requirement on a fixed net:
// every instrumentation counter — MaxListLen, HullPruned, BetasGenerated,
// BetasKept, list/hull length sums, decision count — must be equal between
// backends, because both execute the same pruning and generation decisions.
func TestBackendStatsParity(t *testing.T) {
	lib := library.Generate(16)
	tr := netgen.TwoPin(10000, 60, 15, 1200, netgen.PaperWire())
	opt := Options{Driver: delay.Driver{R: 0.2}}

	opt.Backend = BackendList
	list, err := Insert(tr, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Backend = BackendSoA
	soa, err := Insert(tr, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !list.Stats.SameCounters(soa.Stats) {
		t.Fatalf("stats differ between backends:\nlist %+v\nsoa  %+v", list.Stats, soa.Stats)
	}
	if list.Stats.MaxListLen == 0 || list.Stats.HullPruned == 0 || list.Stats.BetasGenerated == 0 || list.Stats.BetasKept == 0 {
		t.Fatalf("parity check is vacuous — counters not exercised: %+v", list.Stats)
	}
}

// TestWarmEngineZeroAllocs asserts the acceptance criterion for both
// backends: a warm engine re-running the dynamic program performs zero
// steady-state heap allocations.
func TestWarmEngineZeroAllocs(t *testing.T) {
	lib := library.Generate(8)
	tr := netgen.TwoPin(8000, 40, 12, 1000, netgen.PaperWire())
	for _, backend := range []Backend{BackendList, BackendSoA} {
		eng := NewEngine()
		if err := eng.Reset(tr, lib, Options{Driver: delay.Driver{R: 0.25}, Backend: backend}); err != nil {
			t.Fatal(err)
		}
		res := &Result{}
		if err := eng.Run(res); err != nil { // warm the arena slabs
			t.Fatal(err)
		}
		want := res.Slack
		allocs := testing.AllocsPerRun(50, func() {
			if err := eng.Run(res); err != nil {
				t.Fatal(err)
			}
			if res.Slack != want {
				t.Fatalf("warm run diverged: %g != %g", res.Slack, want)
			}
		})
		if allocs > 0 {
			t.Fatalf("backend=%v: warm Run allocates %.1f times per run, want 0", backend, allocs)
		}
	}
}

// TestEngineBackendSwitch re-targets one Engine across backends between
// Resets (the pooled-engine pattern the facade relies on) and checks the
// resolved Backend accessor and the bad-backend error path.
func TestEngineBackendSwitch(t *testing.T) {
	lib := library.Generate(4)
	tr := netgen.TwoPin(5000, 20, 10, 800, netgen.PaperWire())
	eng := NewEngine()
	res := &Result{}
	var slacks [4]float64
	for i, backend := range []Backend{BackendList, BackendSoA, BackendList, BackendSoA} {
		if err := eng.Reset(tr, lib, Options{Backend: backend}); err != nil {
			t.Fatal(err)
		}
		if eng.Backend() != backend {
			t.Fatalf("Backend() = %v, want %v", eng.Backend(), backend)
		}
		if err := eng.Run(res); err != nil {
			t.Fatal(err)
		}
		slacks[i] = res.Slack
	}
	if slacks[0] != slacks[1] || slacks[1] != slacks[2] || slacks[2] != slacks[3] {
		t.Fatalf("backend switching diverged: %v", slacks)
	}
	if err := eng.Reset(tr, lib, Options{Backend: Backend(9)}); err == nil {
		t.Fatal("Reset accepted an unknown backend")
	}
	if err := eng.Run(res); err == nil {
		t.Fatal("Run succeeded after a failed Reset")
	}
	if eng.Backend() != BackendSoA {
		t.Fatalf("failed Reset overwrote Backend(): %v", eng.Backend())
	}
	// The zero value must resolve to the documented default.
	if err := eng.Reset(tr, lib, Options{}); err != nil {
		t.Fatal(err)
	}
	if eng.Backend() != DefaultBackend {
		t.Fatalf("zero-value backend resolved to %v, want %v", eng.Backend(), DefaultBackend)
	}
}
