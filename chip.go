package bufferkit

import (
	"context"
	"io"

	"bufferkit/internal/chip"
	"bufferkit/internal/core"
	"bufferkit/internal/solvererr"
)

// Chip-scale multi-net types, re-exported from internal/chip.
type (
	// ChipInstance is a multi-net buffered-routing problem over one shared
	// site grid.
	ChipInstance = chip.Instance
	// ChipGrid is the W×H buffer-site grid with a default per-site capacity.
	ChipGrid = chip.Grid
	// ChipBlockage is an inclusive capacity-0 cell rectangle on the grid.
	ChipBlockage = chip.Blockage
	// ChipNet is one routing tree competing for sites; ChipNet.Site maps
	// vertex index to site ID (or NoSite).
	ChipNet = chip.Net
	// ChipResult is the outcome of SolveChip: per-net placements and slacks,
	// per-site usage and prices, and the per-round convergence trace.
	ChipResult = chip.Result
	// ChipRound is one price-and-resolve round's convergence record.
	ChipRound = chip.Round
	// PartialChipError reports a chip solve aborted mid-run by cancellation,
	// with completed-round and solved-net counts. It wraps ErrCanceled.
	PartialChipError = chip.PartialError
	// ChipGenOpts parameterize GenerateChip instances.
	ChipGenOpts = chip.GenOpts
)

// NoSite marks a vertex with no site constraint in ChipNet.Site.
const NoSite = chip.NoSite

// GenerateChip builds a seeded multi-net instance over a shared site grid:
// 2-pin nets routed as L-shaped Manhattan paths with every intermediate
// site a buffer position, and a ChipGenOpts.Contention-controlled fraction
// of nets detoured through the grid center so they compete for sites.
func GenerateChip(o ChipGenOpts) *ChipInstance { return chip.Generate(o) }

// ParseChipInstance reads the JSON chip instance format (cmd/netgen -chip
// emits it; see internal/chip's file format documentation).
func ParseChipInstance(r io.Reader) (*ChipInstance, error) { return chip.ParseInstance(r) }

// WriteChipInstance writes an instance ParseChipInstance reproduces exactly.
func WriteChipInstance(w io.Writer, inst *ChipInstance) error { return chip.WriteInstance(w, inst) }

// chipConfig collects the SolveChip options on a Solver. Zero fields defer
// to internal/chip's defaults.
type chipConfig struct {
	rounds   int
	step     float64
	decay    float64
	history  float64
	capacity int
	onRound  func(ChipRound)
}

// WithChipRounds sets SolveChip's pricing-round budget (default 48). The
// deterministic repair pass still runs after the budget if needed.
func WithChipRounds(n int) Option {
	return func(s *Solver) error {
		if n < 0 {
			return solvererr.Validation("bufferkit", "rounds", "round budget %d must be nonnegative", n)
		}
		s.chip.rounds = n
		return nil
	}
}

// WithChipStep sets the initial subgradient step size in ps per unit of
// site overflow (default 8).
func WithChipStep(step float64) Option {
	return func(s *Solver) error {
		if step < 0 {
			return solvererr.Validation("bufferkit", "step", "step %g must be nonnegative", step)
		}
		s.chip.step = step
		return nil
	}
}

// WithChipStepDecay sets the per-round multiplicative step decay, in
// (0, 1] (default 0.9).
func WithChipStepDecay(decay float64) Option {
	return func(s *Solver) error {
		if decay < 0 || decay > 1 {
			return solvererr.Validation("bufferkit", "step_decay", "step decay %g must be in (0, 1]", decay)
		}
		s.chip.decay = decay
		return nil
	}
}

// WithChipHistoryStep sets the PathFinder-style history increment added to
// a site's permanent price floor per unit of overflow per round (default
// 4). Negative disables the history term.
func WithChipHistoryStep(h float64) Option {
	return func(s *Solver) error { s.chip.history = h; return nil }
}

// WithChipCapacity overrides the instance grid's default per-site capacity
// (0 keeps the instance's own; blockages stay at capacity 0).
func WithChipCapacity(c int) Option {
	return func(s *Solver) error {
		if c < 0 {
			return solvererr.Validation("bufferkit", "capacity", "site capacity %d must be nonnegative", c)
		}
		s.chip.capacity = c
		return nil
	}
}

// WithChipProgress sets a callback invoked with each round's convergence
// record as soon as the round completes, from SolveChip's coordinating
// goroutine — the server streams these as NDJSON.
func WithChipProgress(fn func(ChipRound)) Option {
	return func(s *Solver) error { s.chip.onRound = fn; return nil }
}

// SolveChip solves a multi-net instance over the shared site grid by
// Lagrangian price-and-resolve: every round re-solves the nets whose site
// prices changed, in parallel over the solver's warm engine pool
// (WithWorkers), with per-site prices folded into the dynamic program;
// prices then rise by a decaying subgradient step on each site's overflow
// plus a permanent PathFinder-style history increment. When the pricing
// budget ends with overflow, a deterministic sequential repair pass
// re-solves the offending nets with saturated sites masked, so a non-error
// result is always capacity-feasible.
//
// Drivers come from each ChipNet.Driver, not WithDriver. A single net under
// unbounded capacity reproduces Run bit for bit (asserted by the
// differential suite on both backends). Cancellation returns a
// *PartialChipError wrapping ErrCanceled; an instance where some net has no
// capacity-feasible placement returns an error wrapping ErrInfeasible.
// See DESIGN.md §14.
func (s *Solver) SolveChip(ctx context.Context, inst *ChipInstance) (*ChipResult, error) {
	backend, err := s.coreBackend("chip solving")
	if err != nil {
		return nil, err
	}
	for i := range inst.Nets {
		if inst.Nets[i].Tree == nil {
			break // chip.Solve's validation reports this with the net name
		}
		if err := s.checkReducible(inst.Nets[i].Tree); err != nil {
			return nil, err
		}
	}
	res, err := chip.Solve(ctx, inst, s.cfg.Library, chip.Config{
		Rounds:          s.chip.rounds,
		Step:            s.chip.step,
		StepDecay:       s.chip.decay,
		HistoryStep:     s.chip.history,
		Capacity:        s.chip.capacity,
		Workers:         s.workers,
		Prune:           s.cfg.Prune,
		Backend:         backend,
		CheckInvariants: s.cfg.CheckInvariants,
		GetEngine:       func() *core.Engine { return enginePool.Get().(*core.Engine) },
		PutEngine:       func(e *core.Engine) { enginePool.Put(e) },
		OnRound:         s.chip.onRound,
	})
	if res != nil {
		for i := range res.Placements {
			s.remapPlacement(res.Placements[i])
		}
	}
	return res, err
}
